/**
 * @file
 * The SEESAW L1 data cache (Section IV, Fig 4).
 *
 * SEESAW way-partitions a conventional VIPT cache and uses the virtual
 * address bits immediately above the set index (bit 12 upward) as a
 * partition index. For accesses the TFT confirms as superpage-backed,
 * those bits are page-offset bits — identical in the physical address —
 * so only one partition's ways need to be read: a faster, cheaper
 * lookup. TFT misses (base pages, or untracked superpages) read the
 * speculated partition first and the remaining partitions in the next
 * cycle, matching baseline VIPT latency and energy (Table I).
 *
 * With the `4way` insertion policy every line resides in the partition
 * named by its *physical* address, so coherence probes — which carry
 * physical addresses — always read a single partition, for base pages
 * and superpages alike (Section IV-C1).
 */

#ifndef SEESAW_CORE_SEESAW_CACHE_HH
#define SEESAW_CORE_SEESAW_CACHE_HH

#include <memory>

#include "cache/l1_cache.hh"
#include "cache/way_predictor.hh"
#include "core/tft.hh"
#include "model/latency_table.hh"

namespace seesaw {

/** Line insertion policies (Section IV-B1). */
enum class InsertionPolicy : std::uint8_t
{
    /** Victim always drawn from the line's (PA-indexed) partition.
     *  Chosen by the paper: correct under base/super aliasing, cheaper
     *  installs, and partition-scoped coherence lookups. */
    FourWay,

    /** Victim drawn set-wide for base pages, partition-local for
     *  superpages. Slightly better hit rate (~1%) but loses the
     *  coherence benefit and can install the same line twice when a
     *  page is mapped both as a base page and as a superpage. */
    FourWayEightWay,
};

/** SEESAW cache configuration. */
struct SeesawConfig
{
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 8;
    unsigned lineBytes = 64;
    unsigned partitionWays = 4; //!< paper: 16KB / 4-way partitions
    double freqGhz = 1.33;
    InsertionPolicy policy = InsertionPolicy::FourWay;
    bool wayPrediction = false; //!< combined WP+SEESAW (Fig 15)
    unsigned tftEntries = 16;
    unsigned tftAssoc = 1; //!< 1 = the paper's direct-mapped TFT
    ReplacementParams replacement; //!< tag-store victim policy; the
                                   //!< TFT shares it with a
                                   //!< decorrelated Random seed
};

/**
 * The SEESAW L1 data cache.
 */
class SeesawCache final : public L1Cache
{
  public:
    SeesawCache(const SeesawConfig &config, const LatencyTable &latency);

    L1AccessResult access(const L1Access &req) override;
    L1ProbeResult probe(Addr pa, bool invalidating) override;

    /** Speculative install pinned to the PA-named partition so a
     *  prefetched line can never violate partition placement, even
     *  under the 4way-8way policy. */
    Eviction prefetchFill(Addr pa, PageSize page_size) override;

    unsigned baseHitCycles() const override { return slowCycles_; }
    unsigned fastHitCycles() const override { return fastCycles_; }

    unsigned sweepRegion(Addr pa_base, std::uint64_t bytes) override;

    const SetAssocCache &tags() const override { return tags_; }
    SetAssocCache &tags() override { return tags_; }
    const StatGroup &stats() const override { return stats_; }
    StatGroup &stats() override { return stats_; }

    /** The page-size predictor; the TLB hierarchy's 2MB-fill hook and
     *  the OS's invlpg path drive it. */
    Tft &tft() { return tft_; }
    const Tft &tft() const { return tft_; }

    /** Way predictor (present only when configured). */
    const MruWayPredictor *wayPredictor() const
    {
        return predictor_.get();
    }

    unsigned numPartitions() const { return tags_.numPartitions(); }
    const SeesawConfig &config() const { return config_; }

    /** Coherence probes serviced (partition-scoped on a TFT hit). */
    std::uint64_t probes() const { return stProbes_->count(); }

  private:
    SeesawConfig config_;
    SetAssocCache tags_;
    Tft tft_;
    unsigned slowCycles_; //!< full-set (TFT miss) hit latency
    unsigned fastCycles_; //!< single-partition (TFT hit) hit latency
    unsigned tftCycles_;
    std::unique_ptr<MruWayPredictor> predictor_;
    StatGroup stats_;

    // Hot-path stat handles, registered once at construction: several
    // of these names are long enough that building a std::string key
    // per access would heap-allocate on the hot path.
    StatScalar *stAccesses_;
    StatScalar *stHits_;
    StatScalar *stMisses_;
    StatScalar *stSuperRefs_;
    StatScalar *stSuperRefsTftMiss_;
    StatScalar *stSuperRefsTftMissL1Hit_;
    StatScalar *stSuperRefsTftMissL1Miss_;
    StatScalar *stProbes_;
    StatScalar *stProbeHits_;
    StatScalar *stSweepEvictions_;

    SetAssocCache::InsertScope
    insertScopeFor(PageSize size) const
    {
        if (config_.policy == InsertionPolicy::FourWay)
            return SetAssocCache::InsertScope::Partition;
        return isSuperpage(size) ? SetAssocCache::InsertScope::Partition
                                 : SetAssocCache::InsertScope::FullSet;
    }
};

} // namespace seesaw

#endif // SEESAW_CORE_SEESAW_CACHE_HH
