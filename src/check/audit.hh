/**
 * @file
 * Shared vocabulary of the invariant-audit layer: audit cadence modes,
 * the structured violation report, and the compile-time switch.
 *
 * The audit hooks in the simulators are compiled in only when the
 * `SEESAW_AUDIT` CMake option is ON (the default); release builds can
 * turn them off and pay exactly nothing. When compiled in, the cadence
 * is still selected at runtime (`--audit=off|end|periodic|paranoid`).
 */

#ifndef SEESAW_CHECK_AUDIT_HH
#define SEESAW_CHECK_AUDIT_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "common/types.hh"

namespace seesaw::check {

/** True when the simulators' audit hooks are compiled in
 *  (CMake option SEESAW_AUDIT, ON by default). */
#if defined(SEESAW_AUDIT)
inline constexpr bool kAuditCompiledIn = true;
#else
inline constexpr bool kAuditCompiledIn = false;
#endif

/** When the registered invariant checks run. */
enum class AuditMode : std::uint8_t
{
    Off,      //!< never
    End,      //!< once, at end of run (the default)
    Periodic, //!< every AuditOptions::periodEvents events + at end
    Paranoid, //!< every event, every coherence transition, and at end
};

/** Runtime audit configuration (part of the system configs). */
struct AuditOptions
{
    AuditMode mode = AuditMode::End;

    /** Events between audits in Periodic mode. */
    std::uint64_t periodEvents = 65'536;
};

/** Parse "off|end|periodic|paranoid" (fatal on anything else). */
AuditMode parseAuditMode(std::string_view text);

/** The lower-case name parseAuditMode() accepts for @p mode. */
const char *auditModeName(AuditMode mode);

/**
 * One invariant violation, as reported by a check. The default
 * response is to print the report and abort — a violation means the
 * simulator state is corrupt and every number derived from it suspect.
 */
struct Violation
{
    std::string check; //!< registered check name, e.g. "l1.partition"
    int core = -1;     //!< offending core, -1 for single-core systems
    Addr addr = 0;     //!< offending (physical or virtual) address
    Cycles cycle = 0;  //!< simulation cycle when the audit caught it
    std::string detail; //!< human-readable explanation
};

/** One-line rendering: check/core/address/cycle/detail. */
std::string formatViolation(const Violation &v);

} // namespace seesaw::check

#endif // SEESAW_CHECK_AUDIT_HH
