/**
 * @file
 * Invariant checks over the translation structures.
 *
 * auditTlbAgainstPageTable() asserts every valid TLB entry (all levels
 * of the hierarchy) is a faithful copy of the page table: the mapping
 * still exists, at the same size, to the same physical base. A stale
 * entry means an invlpg was lost — translations would silently diverge.
 *
 * auditTftAgainstPageTable() asserts the TFT's core guarantee
 * (§IV-A2): a TFT hit *guarantees* superpage backing, so every valid
 * TFT region must still be mapped by a superpage. A violation means a
 * splinter/unmap failed to invalidate the TFT and the cache would
 * commit to a single partition using VA bits that are not PA bits.
 */

#ifndef SEESAW_CHECK_TLB_AUDITS_HH
#define SEESAW_CHECK_TLB_AUDITS_HH

#include "check/invariant_auditor.hh"
#include "core/tft.hh"
#include "mem/page_table.hh"
#include "tlb/tlb_hierarchy.hh"

namespace seesaw::check {

/** Every valid TLB entry must match the page table exactly. */
void auditTlbAgainstPageTable(const TlbHierarchy &tlb,
                              const PageTable &page_table,
                              AuditContext &ctx);

/** Every valid TFT region must still be superpage-backed for
 *  @p asid (the TFT is not ASID-tagged; it is flushed on context
 *  switch, so it always describes the running address space). */
void auditTftAgainstPageTable(const Tft &tft,
                              const PageTable &page_table, Asid asid,
                              AuditContext &ctx);

} // namespace seesaw::check

#endif // SEESAW_CHECK_TLB_AUDITS_HH
