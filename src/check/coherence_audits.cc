#include "check/coherence_audits.hh"

#include <string>

namespace seesaw::check {

void
auditDirectoryConsistency(const ExactDirectory &directory,
                          const std::vector<const L1Cache *> &l1s,
                          AuditContext &ctx)
{
    const unsigned cores = directory.numCores();
    if (l1s.size() < cores) {
        ctx.violation(0, "directory tracks " + std::to_string(cores) +
                             " cores but only " +
                             std::to_string(l1s.size()) +
                             " L1s were supplied to the audit");
        return;
    }

    // Directory -> caches: every claimed sharer really holds the line,
    // and the MOESI single-writer rules hold across the claimed copies.
    directory.forEachEntry([&](Addr pa, std::uint64_t sharers,
                               int owner) {
        if (sharers == 0) {
            ctx.violation(pa, "directory entry with an empty sharer "
                              "vector (should have been erased)");
            return;
        }
        if (cores < 64 && (sharers >> cores) != 0) {
            ctx.violation(pa, "directory sharer vector names a core "
                              "beyond numCores");
            return;
        }
        if (owner >= 0 &&
            (owner >= static_cast<int>(cores) ||
             (sharers & (1ULL << owner)) == 0)) {
            ctx.violation(pa,
                          "directory owner " + std::to_string(owner) +
                              " is not in the sharer vector");
        }

        unsigned copies = 0;
        for (unsigned c = 0; c < cores; ++c)
            copies += (sharers >> c) & 1U;

        for (unsigned c = 0; c < cores; ++c) {
            if (((sharers >> c) & 1U) == 0)
                continue;
            const CacheLine *line = l1s[c]->tags().findLine(pa);
            if (!line) {
                ctx.violation(pa, "directory claims core " +
                                      std::to_string(c) +
                                      " shares the line but its L1 "
                                      "does not hold it");
                continue;
            }
            if (isDirtyState(line->state) &&
                owner != static_cast<int>(c)) {
                ctx.violation(pa,
                              "core " + std::to_string(c) +
                                  " holds a dirty copy but the "
                                  "directory owner is " +
                                  std::to_string(owner));
            }
            if ((line->state == CoherenceState::Exclusive ||
                 line->state == CoherenceState::Modified) &&
                copies > 1) {
                ctx.violation(
                    pa, "core " + std::to_string(c) +
                            " holds the line " +
                            (line->state == CoherenceState::Modified
                                 ? "Modified"
                                 : "Exclusive") +
                            " while " + std::to_string(copies) +
                            " copies exist (E/M must be the sole "
                            "copy system-wide)");
            }
        }
    });

    // Caches -> directory: no L1 caches a line the directory has lost
    // track of (its probes would never reach that copy).
    for (unsigned c = 0; c < cores; ++c) {
        const SetAssocCache &tags = l1s[c]->tags();
        unsigned line_bits = 0;
        while ((1U << line_bits) < tags.lineBytes())
            ++line_bits;
        tags.forEachValidLine([&](const CacheLine &line) {
            const Addr pa = line.lineAddr << line_bits;
            if (!directory.holds(static_cast<CoreId>(c), pa)) {
                ctx.violation(pa, "core " + std::to_string(c) +
                                      " caches a line the directory "
                                      "does not track for it "
                                      "(untracked copy: probes "
                                      "cannot reach it)");
            }
        });
    }
}

} // namespace seesaw::check
