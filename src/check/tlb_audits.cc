#include "check/tlb_audits.hh"

#include <string>

namespace seesaw::check {

void
auditTlbAgainstPageTable(const TlbHierarchy &tlb,
                         const PageTable &page_table, AuditContext &ctx)
{
    tlb.forEachValidEntry([&](const char *level, const TlbEntry &e) {
        const Addr va_base = e.vpn << pageOffsetBits(e.size);
        const auto t = page_table.translate(e.asid, va_base);
        if (!t) {
            ctx.violation(va_base,
                          std::string(level) + " entry for va 0x" +
                              std::to_string(va_base) +
                              " has no page-table mapping "
                              "(stale after unmap)");
            return;
        }
        if (t->size != e.size) {
            ctx.violation(
                va_base, std::string(level) + " entry caches a " +
                             std::to_string(pageBytes(e.size)) +
                             "B page but the page table maps " +
                             std::to_string(pageBytes(t->size)) +
                             "B (stale after promotion/splinter)");
            return;
        }
        if (t->paBase != e.paBase) {
            ctx.violation(va_base,
                          std::string(level) +
                              " entry translates to a different "
                              "physical base than the page table");
        }
    });
}

void
auditTftAgainstPageTable(const Tft &tft, const PageTable &page_table,
                         Asid asid, AuditContext &ctx)
{
    tft.forEachValidRegion([&](Addr va_base) {
        const auto t = page_table.translate(asid, va_base);
        if (!t) {
            ctx.violation(va_base,
                          "TFT marks an unmapped region as "
                          "superpage-backed");
            return;
        }
        if (!isSuperpage(t->size)) {
            ctx.violation(va_base,
                          "TFT marks a base-page-backed region as "
                          "superpage-backed (a hit would commit the "
                          "L1 to the wrong partition)");
        }
    });
}

} // namespace seesaw::check
