/**
 * @file
 * MOESI directory-consistency audit for the multi-core system.
 *
 * The ExactDirectory is exact by construction: every probe list it
 * emits assumes its sharer vectors mirror the per-core L1 tag state.
 * This audit walks both directions — every directory entry against the
 * L1s it claims as sharers, and every valid L1 line against the
 * directory — and enforces the MOESI single-writer rules: at most one
 * dirty owner, a dirty copy only at the recorded owner, and an E/M
 * copy only while it is the sole copy system-wide.
 */

#ifndef SEESAW_CHECK_COHERENCE_AUDITS_HH
#define SEESAW_CHECK_COHERENCE_AUDITS_HH

#include <vector>

#include "cache/l1_cache.hh"
#include "check/invariant_auditor.hh"
#include "coherence/exact_directory.hh"

namespace seesaw::check {

/**
 * Cross-check @p directory against the per-core L1s in @p l1s
 * (indexed by core id; must cover directory.numCores() cores).
 */
void auditDirectoryConsistency(const ExactDirectory &directory,
                               const std::vector<const L1Cache *> &l1s,
                               AuditContext &ctx);

} // namespace seesaw::check

#endif // SEESAW_CHECK_COHERENCE_AUDITS_HH
