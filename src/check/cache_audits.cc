#include "check/cache_audits.hh"

#include <cstdint>
#include <string>
#include <vector>

namespace seesaw::check {

namespace {

std::string
lineLabel(unsigned set, unsigned way)
{
    return "set " + std::to_string(set) + " way " + std::to_string(way);
}

} // namespace

void
auditTagStoreSanity(const SetAssocCache &tags, AuditContext &ctx,
                    bool allow_duplicates)
{
    const unsigned line_bits = [&] {
        unsigned bits = 0;
        while ((1U << bits) < tags.lineBytes())
            ++bits;
        return bits;
    }();

    const ReplacementPolicy &policy = tags.replacementPolicy();
    for (unsigned set = 0; set < tags.numSets(); ++set) {
        for (unsigned way = 0; way < tags.assoc(); ++way) {
            const CacheLine &line = tags.lineAt(set, way);

            // The policy's occupancy view must mirror line validity —
            // a disagreement silently skews every future victim pick.
            if (policy.occupied(set, way) != line.valid) {
                ctx.violation(
                    line.lineAddr << line_bits,
                    lineLabel(set, way) +
                        (line.valid
                             ? ": valid line unknown to the "
                               "replacement policy"
                             : ": replacement policy tracks an "
                               "invalid line as occupied"));
            }

            if (!line.valid) {
                if (line.state != CoherenceState::Invalid) {
                    ctx.violation(line.lineAddr << line_bits,
                                  lineLabel(set, way) +
                                      ": invalid line carries live "
                                      "coherence state");
                }
                continue;
            }
            const Addr pa = line.lineAddr << line_bits;

            // A valid line must be Invalid-free and findable in the
            // set its own address names.
            if (line.state == CoherenceState::Invalid) {
                ctx.violation(pa, lineLabel(set, way) +
                                      ": valid line in state Invalid");
            }
            if (tags.setIndex(pa) != set) {
                ctx.violation(
                    pa, lineLabel(set, way) + ": line belongs to set " +
                            std::to_string(tags.setIndex(pa)) +
                            " (unreachable where it sits)");
            }

            // One physical line in two ways of a set means lookups are
            // nondeterministic — legal only under `4way-8way` aliasing.
            if (!allow_duplicates) {
                for (unsigned other = 0; other < way; ++other) {
                    const CacheLine &o = tags.lineAt(set, other);
                    if (o.valid && o.lineAddr == line.lineAddr) {
                        ctx.violation(
                            pa, lineLabel(set, way) +
                                    ": same line also valid in way " +
                                    std::to_string(other));
                    }
                }
            }
        }

        // Each policy exports its own side-state invariant (strict
        // timestamp order for LRU/FIFO, RRPV range for SRRIP, nothing
        // for Random).
        policy.auditSet(
            set, [&](unsigned way, const std::string &detail) {
                ctx.violation(tags.lineAt(set, way).lineAddr
                                  << line_bits,
                              lineLabel(set, way) + ": " + detail);
            });
    }
}

void
auditSeesawPlacement(const SeesawCache &cache, AuditContext &ctx)
{
    const SetAssocCache &tags = cache.tags();
    if (tags.numPartitions() <= 1)
        return;

    const bool super_only =
        cache.config().policy == InsertionPolicy::FourWayEightWay;
    const unsigned line_bits = [&] {
        unsigned bits = 0;
        while ((1U << bits) < tags.lineBytes())
            ++bits;
        return bits;
    }();

    for (unsigned set = 0; set < tags.numSets(); ++set) {
        for (unsigned way = 0; way < tags.assoc(); ++way) {
            const CacheLine &line = tags.lineAt(set, way);
            if (!line.valid)
                continue;
            if (super_only && !isSuperpage(line.pageSize))
                continue;
            const Addr pa = line.lineAddr << line_bits;
            const unsigned holds = way / tags.waysPerPartition();
            const unsigned wants = tags.partitionIndex(pa);
            if (holds != wants) {
                ctx.violation(
                    pa,
                    lineLabel(set, way) + ": line sits in partition " +
                        std::to_string(holds) +
                        " but its physical address names partition " +
                        std::to_string(wants) +
                        " (coherence probes read one partition)");
            }
        }
    }
}

void
auditPrefetchPlacement(const SeesawCache &cache, AuditContext &ctx)
{
    const SetAssocCache &tags = cache.tags();
    if (tags.numPartitions() <= 1)
        return;

    const unsigned line_bits = [&] {
        unsigned bits = 0;
        while ((1U << bits) < tags.lineBytes())
            ++bits;
        return bits;
    }();

    // Unlike auditSeesawPlacement, base-page lines get no `4way-8way`
    // exemption here: prefetch fills are always partition-scoped, so
    // any prefetched line outside its PA-named partition means a
    // prefetch crossed into another page's partition.
    for (unsigned set = 0; set < tags.numSets(); ++set) {
        for (unsigned way = 0; way < tags.assoc(); ++way) {
            const CacheLine &line = tags.lineAt(set, way);
            if (!line.valid || !line.prefetched)
                continue;
            const Addr pa = line.lineAddr << line_bits;
            const unsigned holds = way / tags.waysPerPartition();
            const unsigned wants = tags.partitionIndex(pa);
            if (holds != wants) {
                ctx.violation(
                    pa, lineLabel(set, way) +
                            ": prefetched line sits in partition " +
                            std::to_string(holds) +
                            " but its physical address names "
                            "partition " +
                            std::to_string(wants) +
                            " (illegal prefetch crossing)");
            }
        }
    }
}

} // namespace seesaw::check
