#include "check/mem_audits.hh"

#include <string>

namespace seesaw::check {

void
auditTranslationCacheAgainstPageTable(const PageTable &page_table,
                                      AuditContext &ctx)
{
    page_table.translationCache().forEachValidEntry(
        [&](const TranslationCacheEntry &e) {
            const Addr va = e.vpn << 12;
            const auto t = page_table.translateSlow(e.asid, va);
            if (!t) {
                ctx.violation(va,
                              "translation cache holds va 0x" +
                                  std::to_string(va) +
                                  " but the page table has no mapping "
                                  "(stale after unmap)");
                return;
            }
            if (t->size != e.size || t->vaBase != e.vaBase) {
                ctx.violation(
                    va, "translation cache caches a " +
                            std::to_string(pageBytes(e.size)) +
                            "B page at va base 0x" +
                            std::to_string(e.vaBase) +
                            " but the page table maps " +
                            std::to_string(pageBytes(t->size)) +
                            "B at va base 0x" +
                            std::to_string(t->vaBase) +
                            " (stale after promotion/splinter)");
                return;
            }
            if (t->paBase != e.paBase) {
                ctx.violation(va,
                              "translation cache translates to a "
                              "different physical base than the page "
                              "table");
            }
        });
}

} // namespace seesaw::check
