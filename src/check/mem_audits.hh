/**
 * @file
 * Invariant checks over the OS memory structures.
 *
 * auditTranslationCacheAgainstPageTable() asserts that the software
 * translation cache fronting PageTable::translate() is a faithful
 * memo of the hash tables: every live (current-generation) entry must
 * be re-derivable from the slow path at the same virtual base, the
 * same physical base and the same page size. A divergence means a
 * mutation slipped past the generation invalidation and every
 * translation the simulator performs is suspect.
 */

#ifndef SEESAW_CHECK_MEM_AUDITS_HH
#define SEESAW_CHECK_MEM_AUDITS_HH

#include "check/invariant_auditor.hh"
#include "mem/page_table.hh"

namespace seesaw::check {

/** Every live translation-cache entry must match the slow path. */
void auditTranslationCacheAgainstPageTable(const PageTable &page_table,
                                           AuditContext &ctx);

} // namespace seesaw::check

#endif // SEESAW_CHECK_MEM_AUDITS_HH
