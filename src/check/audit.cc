#include "check/audit.hh"

#include <sstream>

#include "common/logging.hh"

namespace seesaw::check {

AuditMode
parseAuditMode(std::string_view text)
{
    if (text == "off")
        return AuditMode::Off;
    if (text == "end")
        return AuditMode::End;
    if (text == "periodic")
        return AuditMode::Periodic;
    if (text == "paranoid")
        return AuditMode::Paranoid;
    SEESAW_FATAL("unknown audit mode '", std::string(text),
                 "' (use off|end|periodic|paranoid)");
}

const char *
auditModeName(AuditMode mode)
{
    switch (mode) {
      case AuditMode::Off: return "off";
      case AuditMode::End: return "end";
      case AuditMode::Periodic: return "periodic";
      case AuditMode::Paranoid: return "paranoid";
    }
    return "?";
}

std::string
formatViolation(const Violation &v)
{
    std::ostringstream os;
    os << "invariant violated: " << v.check;
    if (v.core >= 0)
        os << " core=" << v.core;
    os << " addr=0x" << std::hex << v.addr << std::dec
       << " cycle=" << v.cycle << ": " << v.detail;
    return os.str();
}

} // namespace seesaw::check
