#include "check/invariant_auditor.hh"

#include "common/logging.hh"

namespace seesaw::check {

void
AuditContext::violation(Addr addr, std::string detail)
{
    auditor_.report(
        Violation{check_, core, addr, cycle_, std::move(detail)});
}

InvariantAuditor::InvariantAuditor(AuditOptions options)
    : options_(options)
{
    SEESAW_ASSERT(options_.periodEvents > 0,
                  "periodic audits need a non-zero period");
}

void
InvariantAuditor::registerCheck(std::string name, CheckFn check)
{
    SEESAW_ASSERT(check, "cannot register an empty check");
    for (const auto &existing : checks_) {
        SEESAW_ASSERT(existing.name != name,
                      "duplicate audit check name: ", name);
    }
    checks_.push_back(NamedCheck{std::move(name), std::move(check)});
}

void
InvariantAuditor::onEvent(std::uint64_t events, Cycles now)
{
    if (options_.mode == AuditMode::Paranoid) {
        runAll(now);
        return;
    }
    if (options_.mode != AuditMode::Periodic)
        return;
    eventsSinceAudit_ += events;
    if (eventsSinceAudit_ >= options_.periodEvents) {
        // Carry the overshoot so the cadence does not drift by up to
        // a period per audit.
        eventsSinceAudit_ %= options_.periodEvents;
        runAll(now);
    }
}

void
InvariantAuditor::onCoherenceTransition(Cycles now)
{
    if (options_.mode == AuditMode::Paranoid)
        runAll(now);
}

void
InvariantAuditor::onEndOfRun(Cycles now)
{
    if (options_.mode != AuditMode::Off)
        runAll(now);
}

void
InvariantAuditor::runAll(Cycles now)
{
    ++auditsRun_;
    for (const auto &check : checks_) {
        AuditContext ctx(*this, check.name, now);
        check.fn(ctx);
        ++checksRun_;
    }
}

void
InvariantAuditor::setViolationHandler(ViolationHandler handler)
{
    handler_ = std::move(handler);
}

void
InvariantAuditor::report(const Violation &v)
{
    ++violations_;
    if (handler_) {
        handler_(v);
        return;
    }
    // Default: corrupt simulator state poisons every downstream
    // number — report and abort.
    SEESAW_PANIC(formatViolation(v));
}

std::vector<std::string>
InvariantAuditor::checkNames() const
{
    std::vector<std::string> names;
    names.reserve(checks_.size());
    for (const auto &check : checks_)
        names.push_back(check.name);
    return names;
}

} // namespace seesaw::check
