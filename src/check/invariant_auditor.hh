/**
 * @file
 * The InvariantAuditor: a registry of named invariant checks that the
 * engine (sim/sim_engine.hh) invokes at a configurable
 * cadence — every N events, on coherence transitions, and at end of
 * run. A violation produces a structured report (check name, core,
 * address, cycle, detail) and, by default, aborts the process; tests
 * install a collecting handler instead to prove each check fires on a
 * seeded corruption.
 */

#ifndef SEESAW_CHECK_INVARIANT_AUDITOR_HH
#define SEESAW_CHECK_INVARIANT_AUDITOR_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/audit.hh"

namespace seesaw::check {

class InvariantAuditor;

/**
 * Handed to every check while it runs: carries the check's identity
 * and the audit timestamp, and routes violation reports back to the
 * auditor. Multi-core wrappers set core before delegating to the
 * shared audit functions so reports carry the offending core.
 */
class AuditContext
{
  public:
    /** Report one violation at @p addr. */
    void violation(Addr addr, std::string detail);

    /** Core id attached to subsequent reports (-1 = single-core). */
    int core = -1;

  private:
    friend class InvariantAuditor;
    AuditContext(InvariantAuditor &auditor, std::string check,
                 Cycles cycle)
        : auditor_(auditor), check_(std::move(check)), cycle_(cycle)
    {
    }

    InvariantAuditor &auditor_;
    std::string check_;
    Cycles cycle_;
};

/**
 * Registry + cadence engine for invariant checks.
 */
class InvariantAuditor
{
  public:
    /** A check walks some structure and reports via the context. */
    using CheckFn = std::function<void(AuditContext &)>;

    /** Receives each violation; the default prints and aborts. */
    using ViolationHandler = std::function<void(const Violation &)>;

    explicit InvariantAuditor(AuditOptions options = {});

    /** Register @p check under @p name (unique; fatal otherwise). */
    void registerCheck(std::string name, CheckFn check);

    AuditMode mode() const { return options_.mode; }
    bool enabled() const { return options_.mode != AuditMode::Off; }

    /** @name Cadence hooks (called by the simulators). */
    /// @{
    /** @p events simulation events elapsed; audits in Paranoid mode,
     *  and in Periodic mode once the period is consumed. */
    void onEvent(std::uint64_t events, Cycles now);

    /** A coherence transition completed; audits in Paranoid mode. */
    void onCoherenceTransition(Cycles now);

    /** The run finished; audits in every mode but Off. */
    void onEndOfRun(Cycles now);
    /// @}

    /** Run every registered check now, regardless of mode. */
    void runAll(Cycles now);

    /** Replace the abort-on-violation default (tests). */
    void setViolationHandler(ViolationHandler handler);

    /** @name Introspection. */
    /// @{
    std::size_t checkCount() const { return checks_.size(); }
    std::vector<std::string> checkNames() const;
    std::uint64_t auditsRun() const { return auditsRun_; }
    std::uint64_t checksRun() const { return checksRun_; }
    std::uint64_t violations() const { return violations_; }
    /// @}

  private:
    friend class AuditContext;

    void report(const Violation &v);

    struct NamedCheck
    {
        std::string name;
        CheckFn fn;
    };

    AuditOptions options_;
    std::vector<NamedCheck> checks_;
    ViolationHandler handler_;
    std::uint64_t eventsSinceAudit_ = 0;
    std::uint64_t auditsRun_ = 0;
    std::uint64_t checksRun_ = 0;
    std::uint64_t violations_ = 0;
};

} // namespace seesaw::check

#endif // SEESAW_CHECK_INVARIANT_AUDITOR_HH
