/**
 * @file
 * Invariant checks over tag stores and the SEESAW way-partition.
 *
 * auditTagStoreSanity() covers any SetAssocCache (L1s, private L2s,
 * the LLC): lines must be findable in the set their address names,
 * valid/state flags must agree, the replacement policy's occupancy
 * view must match line validity, and the policy's own side-state
 * invariant must hold (each ReplacementPolicy exports it — e.g. LRU
 * timestamps form a strict order below the use clock, SRRIP RRPVs
 * stay in range; see ReplacementPolicy::auditSet).
 *
 * auditSeesawPlacement() covers the partition compliance the paper's
 * coherence and energy claims rest on (§IV-B1/IV-C1): under the
 * `4way` policy every line sits in the partition its physical address
 * names; under `4way-8way` only superpage lines must.
 *
 * auditPrefetchPlacement() is the stricter rule for prefetched lines:
 * SEESAW prefetch fills always use partition scope (the candidate's
 * PA comes from the triggering access's translation), so a prefetched
 * line must sit in its PA-named partition even under `4way-8way`.
 */

#ifndef SEESAW_CHECK_CACHE_AUDITS_HH
#define SEESAW_CHECK_CACHE_AUDITS_HH

#include "cache/set_assoc_cache.hh"
#include "check/invariant_auditor.hh"
#include "core/seesaw_cache.hh"

namespace seesaw::check {

/**
 * Structural sanity of one tag store.
 * @param allow_duplicates Tolerate one physical line present in two
 *        ways of a set — legal only under SEESAW's `4way-8way`
 *        insertion policy (a page mapped both base and super).
 */
void auditTagStoreSanity(const SetAssocCache &tags, AuditContext &ctx,
                         bool allow_duplicates = false);

/** SEESAW partition compliance for @p cache's tag store. */
void auditSeesawPlacement(const SeesawCache &cache, AuditContext &ctx);

/** Prefetched lines must sit in their PA-named partition under every
 *  insertion policy (prefetch fills are partition-scoped). */
void auditPrefetchPlacement(const SeesawCache &cache,
                            AuditContext &ctx);

} // namespace seesaw::check

#endif // SEESAW_CHECK_CACHE_AUDITS_HH
