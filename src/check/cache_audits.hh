/**
 * @file
 * Invariant checks over tag stores and the SEESAW way-partition.
 *
 * auditTagStoreSanity() covers any SetAssocCache (L1s, private L2s,
 * the LLC): lines must be findable in the set their address names,
 * LRU timestamps must form a strict order (a permutation of the
 * recency stack), and valid/state flags must agree.
 *
 * auditSeesawPlacement() covers the partition compliance the paper's
 * coherence and energy claims rest on (§IV-B1/IV-C1): under the
 * `4way` policy every line sits in the partition its physical address
 * names; under `4way-8way` only superpage lines must.
 */

#ifndef SEESAW_CHECK_CACHE_AUDITS_HH
#define SEESAW_CHECK_CACHE_AUDITS_HH

#include "cache/set_assoc_cache.hh"
#include "check/invariant_auditor.hh"
#include "core/seesaw_cache.hh"

namespace seesaw::check {

/**
 * Structural sanity of one tag store.
 * @param allow_duplicates Tolerate one physical line present in two
 *        ways of a set — legal only under SEESAW's `4way-8way`
 *        insertion policy (a page mapped both base and super).
 */
void auditTagStoreSanity(const SetAssocCache &tags, AuditContext &ctx,
                         bool allow_duplicates = false);

/** SEESAW partition compliance for @p cache's tag store. */
void auditSeesawPlacement(const SeesawCache &cache, AuditContext &ctx);

} // namespace seesaw::check

#endif // SEESAW_CHECK_CACHE_AUDITS_HH
