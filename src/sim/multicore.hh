/**
 * @file
 * A multi-core system with exact directory coherence (Table II: 32+
 * cores, MOESI directory): N detailed cores, each with a private L1
 * (baseline VIPT or SEESAW, with its own TFT and TLB hierarchy) and a
 * private L2, sharing the LLC and physical memory. Threads of one
 * multi-threaded workload run one per core over a shared heap, so
 * sharing — and therefore every coherence probe — is real, not
 * sampled: each probe corresponds to an actual remote copy, and pays
 * the probed cache's lookup width (8-way baseline vs 4-way SEESAW,
 * §IV-C1).
 */

#ifndef SEESAW_SIM_MULTICORE_HH
#define SEESAW_SIM_MULTICORE_HH

#include <memory>
#include <vector>

#include "cache/baseline_caches.hh"
#include "check/audit.hh"
#include "coherence/exact_directory.hh"
#include "core/seesaw_cache.hh"
#include "cpu/cpu_model.hh"
#include "mem/memhog.hh"
#include "mem/os_memory_manager.hh"
#include "model/energy_model.hh"
#include "model/latency_table.hh"
#include "sim/system.hh"
#include "tlb/tlb_hierarchy.hh"
#include "workload/reference_stream.hh"

namespace seesaw {

/** Configuration of the multi-core system. */
struct MultiCoreConfig
{
    unsigned cores = 4;
    L1Kind l1Kind = L1Kind::Seesaw;

    std::uint64_t l1SizeBytes = 32 * 1024;
    unsigned l1Assoc = 8;
    unsigned partitionWays = 4;
    double freqGhz = 1.33;
    InsertionPolicy policy = InsertionPolicy::FourWay;
    unsigned tftEntries = 16;

    OsParams os;
    MemhogParams memhog;
    double memhogFraction = 0.0;

    OuterHierarchyParams outer; //!< L2 geometry (private) + LLC/DRAM

    /** Instructions per core. */
    std::uint64_t instructionsPerCore = 100'000;
    std::uint64_t warmupInstructionsPerCore = 40'000;
    std::uint64_t seed = 1;

    /** Invariant-audit cadence (src/check); Paranoid additionally
     *  audits after every coherence transition. Modes other than Off
     *  need a build with -DSEESAW_AUDIT=ON. */
    check::AuditOptions audit;
};

/** Aggregate results of one multi-core run. */
struct MultiRunResult
{
    unsigned cores = 0;
    std::uint64_t instructions = 0; //!< summed over cores
    Cycles cycles = 0;              //!< slowest core
    double aggregateIpc = 0.0;      //!< instructions / cycles

    std::uint64_t l1Accesses = 0;
    std::uint64_t l1Hits = 0;

    std::uint64_t probes = 0;       //!< directory-directed L1 probes
    std::uint64_t probeHits = 0;
    std::uint64_t ownerSupplies = 0; //!< cache-to-cache transfers

    double energyTotalNj = 0.0;
    double l1CpuDynamicNj = 0.0;
    double l1CoherenceDynamicNj = 0.0;
    double outerNj = 0.0;

    double superpageRefFraction = 0.0;
    double superpageCoverage = 0.0;
};

/**
 * Project a multi-core result onto the single-system RunResult shape
 * (fields the multi-core simulator does not model stay zero), so
 * multi-core cells flow through the same campaign sinks as everything
 * else. @p workload labels the result.
 */
RunResult asRunResult(const MultiRunResult &r,
                      const std::string &workload);

/**
 * The multi-core simulator.
 */
class MultiCoreSystem
{
  public:
    MultiCoreSystem(const MultiCoreConfig &config,
                    const WorkloadSpec &workload);
    ~MultiCoreSystem();

    /** Execute the per-core instruction budgets. */
    MultiRunResult run();

    /** Verify that directory state matches every cache's contents —
     *  the coherence invariant (tests call this after runs). */
    bool checkDirectoryInvariant() const;

    unsigned cores() const { return config_.cores; }
    ExactDirectory &directory() { return directory_; }
    L1Cache &l1(unsigned core) { return *l1s_[core]; }
    TlbHierarchy &tlb(unsigned core) { return *tlbs_[core]; }
    OsMemoryManager &os() { return *os_; }
    Asid asid() const { return asid_; }

    /** The invariant auditor, or nullptr when audits are off or the
     *  audit layer is compiled out. */
    check::InvariantAuditor *auditor() { return auditor_.get(); }

  private:
    MultiCoreConfig config_;
    WorkloadSpec workload_;

    LatencyTable latency_;
    std::unique_ptr<EnergyModel> energy_;
    std::unique_ptr<OsMemoryManager> os_;
    std::unique_ptr<Memhog> memhog_;
    ExactDirectory directory_;

    // Shared outer levels.
    std::unique_ptr<SetAssocCache> llc_;
    unsigned l2Cycles_, llcCycles_, dramCycles_;

    // Per-core state.
    std::vector<std::unique_ptr<L1Cache>> l1s_;
    std::vector<std::unique_ptr<SetAssocCache>> l2s_;
    std::vector<std::unique_ptr<TlbHierarchy>> tlbs_;
    std::vector<std::unique_ptr<CpuModel>> cpus_;
    std::vector<std::unique_ptr<ReferenceStream>> streams_;

    Asid asid_ = 0;
    Addr heapBase_ = 0;

    std::uint64_t probes_ = 0;
    std::uint64_t probeHits_ = 0;
    std::uint64_t ownerSupplies_ = 0;
    std::uint64_t superRefs_ = 0;
    std::uint64_t totalRefs_ = 0;

    bool isSeesaw() const
    {
        return config_.l1Kind == L1Kind::Seesaw ||
               config_.l1Kind == L1Kind::SeesawWayPredicted;
    }

    /** Execute one reference on @p core; @return instructions retired. */
    std::uint64_t step(CoreId core);

    /** Send the directory-directed probes; @return extra latency. */
    unsigned sendProbes(CoreId requester,
                        const ExactDirectory::ProbeList &probes,
                        Addr pa);

    /** Private-L2 + shared-LLC + DRAM miss path. */
    unsigned outerAccess(CoreId core, Addr pa, AccessType type,
                         bool owner_supplied);

    void resetMeasurement();

    /** Build the auditor and register the per-layer checks. */
    void setupAuditor();
    std::unique_ptr<check::InvariantAuditor> auditor_;
};

} // namespace seesaw

#endif // SEESAW_SIM_MULTICORE_HH
