#include "sim/report.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace seesaw {

TableReporter::TableReporter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    SEESAW_ASSERT(!headers_.empty(), "table needs headers");
}

void
TableReporter::addRow(std::vector<std::string> cells)
{
    SEESAW_ASSERT(cells.size() == headers_.size(),
                  "row width mismatch: ", cells.size(), " vs ",
                  headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TableReporter::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << (c == 0 ? "" : "  ");
            os << cells[c];
            os << std::string(widths[c] - cells[c].size(), ' ');
        }
        os << '\n';
    };

    emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c == 0 ? 0 : 2);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

void
TableReporter::print() const
{
    std::fputs(render().c_str(), stdout);
}

std::string
TableReporter::fmt(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
TableReporter::pct(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, value);
    return buf;
}

void
printBanner(const std::string &experiment_id, const std::string &caption)
{
    std::printf("\n=== %s — %s ===\n\n", experiment_id.c_str(),
                caption.c_str());
}

} // namespace seesaw
