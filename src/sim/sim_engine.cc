#include "sim/sim_engine.hh"

#include <algorithm>

#include "check/cache_audits.hh"
#include "check/coherence_audits.hh"
#include "check/invariant_auditor.hh"
#include "check/mem_audits.hh"
#include "check/tlb_audits.hh"
#include "common/logging.hh"

namespace seesaw {

std::uint64_t
SimEngine::coreSeed(std::uint64_t seed, unsigned core)
{
    if (core == 0)
        return seed; // core 0 is the classic single-core stream
    // SplitMix64: golden-ratio increment + finalizer. A plain
    // `seed ^ (salt + core)` leaves adjacent cores' streams
    // low-bit-correlated; the finalizer avalanches every input bit.
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * core;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

SimEngine::SimEngine(const SystemConfig &config,
                     const WorkloadSpec &workload)
    : config_(config), workload_(workload), latency_(TechNode::Intel22),
      eventRng_(config.seed ^ 0xe7e27ULL)
{
    SEESAW_ASSERT(config_.cores >= 1 && config_.cores <= 64,
                  "1-64 cores supported");
    energy_ = std::make_unique<EnergyModel>(latency_.sram());

    // --- OS and physical memory. Fragment first (long-uptime host),
    // then map the workload's footprint.
    OsParams os_params = config_.os;
    os_params.seed ^= config_.seed;
    os_ = std::make_unique<OsMemoryManager>(os_params);
    memhog_ = std::make_unique<Memhog>(*os_, config_.memhog);
    memhog_->consume(config_.memhogFraction);

    asid_ = os_->createProcess();
    heapBase_ = Addr{1} << 40; // 1GB-aligned heap base
    if (config_.useOneGbHeap) {
        // §IV generalisation: back the heap with 1GB pages where the
        // allocator can find gigabyte contiguity, THP elsewhere.
        const Addr gb = Addr{1} << 30;
        Addr off = 0;
        while (off < workload_.footprintBytes &&
               os_->mapOneGbPage(asid_, heapBase_ + off)) {
            off += gb;
        }
        if (off < workload_.footprintBytes) {
            os_->mapAnonymous(asid_, heapBase_ + off,
                              workload_.footprintBytes - off,
                              workload_.thpEligibleFraction);
        }
    } else {
        os_->mapAnonymous(asid_, heapBase_, workload_.footprintBytes,
                          workload_.thpEligibleFraction);
    }

    // The text segment is shared by all cores; map it once before the
    // complexes build their fetch streams.
    if (config_.modelInstructionCache) {
        textBase_ = Addr{2} << 40;
        os_->mapAnonymous(asid_, textBase_,
                          workload_.codeFootprintBytes,
                          config_.codeThpEligibleFraction);
    }

    // Multi-core systems share one LLC behind the private L2s; a
    // single-core complex keeps its private LLC (original System).
    if (config_.cores > 1) {
        sharedLlc_ = std::make_unique<SetAssocCache>(
            config_.outer.llcSizeBytes, config_.outer.llcAssoc);
    }

    for (unsigned c = 0; c < config_.cores; ++c) {
        complexes_.push_back(std::make_unique<CoreComplex>(
            config_, workload_, latency_, *os_, *energy_, asid_,
            heapBase_, textBase_, static_cast<CoreId>(c),
            coreSeed(config_.seed, c), sharedLlc_.get()));
    }

    if (config_.cores > 1) {
        // Probe latency models directory/bus indirection plus the
        // remote round trip — the engine charges its LLC latency.
        const unsigned probe_cycles =
            complexes_[0]->outer().llcCycles();
        switch (config_.fabric) {
          case CoherenceKind::Directory:
            fabric_ = std::make_unique<DirectoryFabric>(
                config_.cores, probe_cycles, *energy_);
            break;
          case CoherenceKind::Snoopy:
            fabric_ = std::make_unique<SnoopFabric>(
                config_.cores, probe_cycles, *energy_);
            break;
          case CoherenceKind::None:
            fabric_ = std::make_unique<NullFabric>();
            break;
        }
        directory_ = fabric_->directory();
        for (auto &cx : complexes_)
            fabric_->attachCore(&cx->l1(), &cx->outer().l2());
    }

    nextPromotion_ = config_.promotionInterval;
    nextSplinter_ = config_.splinterInterval;

    setupAuditor();
}

SimEngine::~SimEngine() = default;

namespace {

bool
isSeesawConfig(const SystemConfig &config)
{
    return config.l1Kind == L1Kind::Seesaw ||
           config.l1Kind == L1Kind::SeesawWayPredicted;
}

} // namespace

void
registerSystemAudits(check::InvariantAuditor &auditor,
                     const SystemConfig &config,
                     std::vector<CoreComplex *> complexes,
                     SetAssocCache *shared_llc, ExactDirectory *directory,
                     OsMemoryManager &os, Asid asid)
{
    const bool multi = config.cores > 1;
    const unsigned n = config.cores;
    OsMemoryManager *os_p = &os;
    const auto cxs = std::move(complexes);

    if (directory) {
        auditor.registerCheck(
            "directory", [cxs, directory](check::AuditContext &ctx) {
                std::vector<const L1Cache *> l1s;
                l1s.reserve(cxs.size());
                for (CoreComplex *cx : cxs)
                    l1s.push_back(&cx->l1());
                check::auditDirectoryConsistency(*directory, l1s, ctx);
            });
    }

    // Duplicate lines (one PA in two ways) are legal only under the
    // 4way-8way SEESAW policy, where a page mapped both base and super
    // can be installed twice (§IV-B1).
    const bool allow_dup =
        isSeesawConfig(config) &&
        config.policy == InsertionPolicy::FourWayEightWay;

    auditor.registerCheck(
        "l1.tags",
        [cxs, allow_dup, multi, n](check::AuditContext &ctx) {
            for (unsigned c = 0; c < n; ++c) {
                if (multi)
                    ctx.core = static_cast<int>(c);
                check::auditTagStoreSanity(cxs[c]->l1().tags(), ctx,
                                           allow_dup);
            }
        });
    auditor.registerCheck(
        "tlb", [cxs, os_p, multi, n](check::AuditContext &ctx) {
            for (unsigned c = 0; c < n; ++c) {
                if (multi)
                    ctx.core = static_cast<int>(c);
                check::auditTlbAgainstPageTable(cxs[c]->activeTlb(),
                                                os_p->pageTable(), ctx);
            }
        });
    auditor.registerCheck(
        "mem.tcache", [os_p](check::AuditContext &ctx) {
            check::auditTranslationCacheAgainstPageTable(
                os_p->pageTable(), ctx);
        });
    if (multi) {
        auditor.registerCheck(
            "outer.tags", [cxs, shared_llc, n](check::AuditContext &ctx) {
                for (unsigned c = 0; c < n; ++c) {
                    ctx.core = static_cast<int>(c);
                    check::auditTagStoreSanity(cxs[c]->outer().l2(),
                                               ctx);
                }
                ctx.core = -1;
                check::auditTagStoreSanity(*shared_llc, ctx);
            });
    }
    if (isSeesawConfig(config)) {
        auditor.registerCheck(
            "l1.partition",
            [cxs, multi, n](check::AuditContext &ctx) {
                for (unsigned c = 0; c < n; ++c) {
                    if (multi)
                        ctx.core = static_cast<int>(c);
                    check::auditSeesawPlacement(*cxs[c]->seesawL1(),
                                                ctx);
                }
            });
        auditor.registerCheck(
            "l1.prefetch",
            [cxs, multi, n](check::AuditContext &ctx) {
                for (unsigned c = 0; c < n; ++c) {
                    if (multi)
                        ctx.core = static_cast<int>(c);
                    check::auditPrefetchPlacement(*cxs[c]->seesawL1(),
                                                  ctx);
                }
            });
        auditor.registerCheck(
            "l1.tft", [cxs, os_p, asid, multi, n](check::AuditContext &ctx) {
                for (unsigned c = 0; c < n; ++c) {
                    if (multi)
                        ctx.core = static_cast<int>(c);
                    check::auditTftAgainstPageTable(
                        cxs[c]->seesawL1()->tft(), os_p->pageTable(),
                        asid, ctx);
                }
            });
    }
    if (cxs[0]->l1i()) {
        auditor.registerCheck(
            "l1i.tags",
            [cxs, allow_dup, multi, n](check::AuditContext &ctx) {
                for (unsigned c = 0; c < n; ++c) {
                    if (multi)
                        ctx.core = static_cast<int>(c);
                    check::auditTagStoreSanity(cxs[c]->l1i()->tags(),
                                               ctx, allow_dup);
                }
            });
        if (cxs[0]->seesawL1i()) {
            auditor.registerCheck(
                "l1i.partition",
                [cxs, multi, n](check::AuditContext &ctx) {
                    for (unsigned c = 0; c < n; ++c) {
                        if (multi)
                            ctx.core = static_cast<int>(c);
                        check::auditSeesawPlacement(
                            *cxs[c]->seesawL1i(), ctx);
                    }
                });
            auditor.registerCheck(
                "l1i.tft",
                [cxs, os_p, asid, multi, n](check::AuditContext &ctx) {
                    for (unsigned c = 0; c < n; ++c) {
                        if (multi)
                            ctx.core = static_cast<int>(c);
                        check::auditTftAgainstPageTable(
                            cxs[c]->seesawL1i()->tft(),
                            os_p->pageTable(), asid, ctx);
                    }
                });
        }
    }
}

void
SimEngine::setupAuditor()
{
    if (config_.audit.mode == check::AuditMode::Off)
        return;
    if (!check::kAuditCompiledIn) {
        SEESAW_WARN("audit mode '",
                    check::auditModeName(config_.audit.mode),
                    "' requested but the audit layer is compiled out; "
                    "rebuild with -DSEESAW_AUDIT=ON");
        return;
    }

    auditor_ =
        std::make_unique<check::InvariantAuditor>(config_.audit);

    std::vector<CoreComplex *> cxs;
    cxs.reserve(complexes_.size());
    for (auto &cx : complexes_)
        cxs.push_back(cx.get());
    registerSystemAudits(*auditor_, config_, std::move(cxs),
                         sharedLlc_.get(), directory_, *os_, asid_);
}

void
SimEngine::applyPromotion(const PromotionEvent &event)
{
    // The OS's TLB-invalidation instruction (§IV-C2): shoot down the
    // 512 stale base-page translations and sweep their lines from
    // every core's L1. The paper measures the whole operation at
    // 150-200 cycles.
    for (auto &cx : complexes_) {
        for (unsigned i = 0; i < 512; ++i)
            cx->tlb().invalidatePage(event.asid,
                                     event.vaBase + i * 4096ULL);
        for (Addr old_pa : event.oldPaBases)
            cx->l1().sweepRegion(old_pa, 4096);
        cx->cpu().addStallCycles(config_.shootdownCycles);
    }
    if (directory_) {
        // The sweep removed any copies of the old frames from every
        // L1; retire the directory records too (recordEviction is a
        // no-op for lines the directory never tracked).
        for (Addr old_pa : event.oldPaBases) {
            for (CoreId c = 0; c < complexes_.size(); ++c) {
                for (Addr line = old_pa; line < old_pa + 4096;
                     line += 64)
                    directory_->recordEviction(c, line);
            }
        }
    }
}

void
SimEngine::applySplinter(const SplinterEvent &event)
{
    // invlpg on the old 2MB translation; the microarchitecture also
    // invalidates the matching TFT entry in parallel (§IV-C2).
    for (auto &cx : complexes_) {
        cx->tlb().invalidatePage(event.asid, event.vaBase);
        if (SeesawCache *cache = cx->seesawL1())
            cache->tft().invalidateRegion(event.vaBase);
        cx->cpu().addStallCycles(config_.shootdownCycles);
    }
}

void
SimEngine::osTick(CoreId c)
{
    CoreComplex &cx = *complexes_[c];
    const std::uint64_t retired = cx.retiredTotal_;

    if (config_.contextSwitchInterval &&
        retired >= cx.nextContextSwitch_) {
        cx.nextContextSwitch_ += config_.contextSwitchInterval;
        // The TFT carries no ASID tags; context switches flush it.
        if (SeesawCache *cache = cx.seesawL1())
            cache->tft().flush();
    }

    // OS housekeeping passes are global; core 0's retirement clock
    // drives them (at cores=1 this is exactly the original schedule).
    if (c != 0)
        return;

    if (config_.promotionInterval && retired >= nextPromotion_) {
        nextPromotion_ += config_.promotionInterval;
        for (const auto &event : os_->runPromotionPass(asid_, 2))
            applyPromotion(event);
    }

    if (config_.splinterInterval && retired >= nextSplinter_) {
        nextSplinter_ += config_.splinterInterval;
        const auto supers = os_->superpageVas(asid_);
        if (!supers.empty()) {
            const Addr va =
                supers[eventRng_.nextBounded(supers.size())];
            if (auto event = os_->splinter(asid_, va))
                applySplinter(*event);
        }
    }
}

std::uint64_t
SimEngine::step(CoreId c, std::uint64_t room)
{
    CoreComplex &cx = *complexes_[c];
    MemRef ref = cx.nextRef();
    // Clamp the gap so we never badly overshoot the budget.
    if (ref.gap + 1ULL > room)
        ref.gap = static_cast<std::uint32_t>(room > 0 ? room - 1 : 0);
    cx.cpu().retireNonMemory(ref.gap);
    const bool transition = cx.doMemoryAccess(ref, fabric_.get());
    cx.doInstructionFetches(ref.gap + 1);
    cx.retiredTotal_ += ref.gap + 1;
    if (ProbeEngine *probes = cx.probeEngine())
        probes->tick(ref.gap + 1);
    osTick(c);
    if constexpr (check::kAuditCompiledIn) {
        if (auditor_) {
            // Fabric state and caches are mutually consistent again
            // here: audit after every completed transition in
            // Paranoid mode.
            if (fabric_ && transition)
                auditor_->onCoherenceTransition(cx.cpu().cycles());
            auditor_->onEvent(ref.gap + 1, cx.cpu().cycles());
        }
    }
    return ref.gap + 1;
}

void
SimEngine::runLoop(std::uint64_t per_core_budget)
{
    std::vector<std::uint64_t> retired(complexes_.size(), 0);
    bool progress = true;
    while (progress) {
        progress = false;
        for (CoreId c = 0; c < complexes_.size(); ++c) {
            if (retired[c] < per_core_budget) {
                retired[c] += step(c, per_core_budget - retired[c]);
                progress = true;
            }
        }
    }
}

void
SimEngine::resetMeasurement()
{
    for (auto &cx : complexes_)
        cx->resetMeasurement();
    energy_->reset();
    if (fabric_)
        fabric_->resetStats();
}

RunResult
SimEngine::run()
{
    if (config_.warmupInstructions > 0) {
        runLoop(config_.warmupInstructions);
        resetMeasurement();
    }
    runLoop(config_.instructions);

    Cycles max_cycles = 0;
    for (auto &cx : complexes_)
        max_cycles = std::max(max_cycles, cx->cpu().cycles());

    if constexpr (check::kAuditCompiledIn) {
        if (auditor_)
            auditor_->onEndOfRun(max_cycles);
    }

    // Static energy over the whole run: every core's L1 leakage plus
    // the outer hierarchy's background power (this is where faster
    // runtime becomes hierarchy-energy savings).
    for (auto &cx : complexes_) {
        energy_->addL1Leakage(config_.l1SizeBytes, max_cycles,
                              config_.freqGhz);
        if (cx->l1i())
            energy_->addL1Leakage(32 * 1024, max_cycles,
                                  config_.freqGhz);
    }
    energy_->addBackground(max_cycles, config_.freqGhz);

    return collectResults(max_cycles);
}

RunResult
SimEngine::collectResults(Cycles max_cycles)
{
    std::vector<CoreComplex *> cxs;
    cxs.reserve(complexes_.size());
    for (auto &cx : complexes_)
        cxs.push_back(cx.get());
    return collectRunResults(config_, workload_, cxs, *energy_,
                             fabric_.get(), *os_, asid_, max_cycles);
}

RunResult
collectRunResults(const SystemConfig &config,
                  const WorkloadSpec &workload,
                  const std::vector<CoreComplex *> &complexes,
                  EnergyModel &energy, CoherenceFabric *fabric,
                  OsMemoryManager &os, Asid asid, Cycles max_cycles)
{
    RunResult r;
    r.workload = workload.name;
    r.cores = config.cores;
    r.cycles = max_cycles;
    r.runtimeNs = static_cast<double>(r.cycles) / config.freqGhz;

    double wp_sum = 0.0;
    unsigned wp_count = 0;
    for (CoreComplex *cx : complexes) {
        PerCoreResult pc;
        pc.instructions = cx->cpu().instructions();
        pc.cycles = cx->cpu().cycles();
        pc.ipc = cx->cpu().ipc();
        pc.squashes = cx->cpu().squashes();
        pc.pageFaults = cx->pageFaults();

        const StatGroup &cs = cx->l1().stats();
        pc.l1Accesses =
            static_cast<std::uint64_t>(cs.get("accesses"));
        pc.l1Hits = static_cast<std::uint64_t>(cs.get("hits"));
        pc.l1Misses = static_cast<std::uint64_t>(cs.get("misses"));

        r.instructions += pc.instructions;
        r.l1Accesses += pc.l1Accesses;
        r.l1Hits += pc.l1Hits;
        r.l1Misses += pc.l1Misses;
        r.superpageRefs +=
            static_cast<std::uint64_t>(cs.get("superpage_refs"));
        r.superpageRefsTftMiss = r.superpageRefsTftMiss +
            static_cast<std::uint64_t>(
                cs.get("superpage_refs_tft_miss"));
        r.superpageRefsTftMissL1Hit = r.superpageRefsTftMissL1Hit +
            static_cast<std::uint64_t>(
                cs.get("superpage_refs_tft_miss_l1_hit"));
        r.superpageRefsTftMissL1Miss = r.superpageRefsTftMissL1Miss +
            static_cast<std::uint64_t>(
                cs.get("superpage_refs_tft_miss_l1_miss"));

        const StatGroup &os_stats = cx->outer().stats();
        r.l2Accesses +=
            static_cast<std::uint64_t>(os_stats.get("l2_accesses"));
        r.l2Hits +=
            static_cast<std::uint64_t>(os_stats.get("l2_hits"));
        r.llcAccesses +=
            static_cast<std::uint64_t>(os_stats.get("llc_accesses"));
        r.llcHits +=
            static_cast<std::uint64_t>(os_stats.get("llc_hits"));
        r.dramAccesses +=
            static_cast<std::uint64_t>(os_stats.get("dram_accesses"));

        if (SeesawCache *cache = cx->seesawL1()) {
            r.tftLookups += static_cast<std::uint64_t>(
                cache->tft().stats().get("lookups"));
            pc.tftHits = static_cast<std::uint64_t>(
                cache->tft().stats().get("hits"));
            r.tftHits += pc.tftHits;
            if (const MruWayPredictor *wp = cache->wayPredictor()) {
                wp_sum += wp->accuracy();
                ++wp_count;
            }
        } else if (auto *vipt =
                       dynamic_cast<ViptCache *>(&cx->l1())) {
            if (const MruWayPredictor *wp = vipt->wayPredictor()) {
                wp_sum += wp->accuracy();
                ++wp_count;
            }
        }

        if (L1Cache *l1i = cx->l1i()) {
            r.l1iAccesses += static_cast<std::uint64_t>(
                l1i->stats().get("accesses"));
            r.l1iMisses += static_cast<std::uint64_t>(
                l1i->stats().get("misses"));
        }

        r.prefetchIssued += cx->prefetchIssued();
        r.prefetchUseful += cx->prefetchUseful();
        r.prefetchLate += cx->prefetchLate();
        r.prefetchIllegalCrossing += cx->prefetchIllegalCrossing();

        r.squashes += pc.squashes;
        r.pageFaults += pc.pageFaults;
        r.perCore.push_back(pc);
    }

    r.ipc = r.cycles ? static_cast<double>(r.instructions) /
                           static_cast<double>(r.cycles)
                     : 0.0;
    r.l1Mpki = r.instructions
                   ? 1000.0 * static_cast<double>(r.l1Misses) /
                         static_cast<double>(r.instructions)
                   : 0.0;
    r.superpageRefFraction =
        r.l1Accesses ? static_cast<double>(r.superpageRefs) /
                           static_cast<double>(r.l1Accesses)
                     : 0.0;
    if (isSeesawConfig(config))
        r.fastHits = r.tftHits;
    if (wp_count)
        r.wpAccuracy = wp_sum / static_cast<double>(wp_count);

    r.superpageCoverage = os.superpageCoverage(asid);

    r.energyTotalNj = energy.totalNj();
    r.l1CpuDynamicNj = energy.l1CpuDynamicNj();
    r.l1CoherenceDynamicNj = energy.l1CoherenceDynamicNj();
    r.l1LeakageNj = energy.l1LeakageNj();
    r.outerNj = energy.outerHierarchyNj();
    r.translationNj = energy.translationNj();

    if (fabric) {
        r.probes = fabric->probes();
        r.probeHits = fabric->probeHits();
        r.probeInvalidations = fabric->invalidations();
        r.ownerSupplies = fabric->ownerSupplies();
    } else if (ProbeEngine *probes = complexes[0]->probeEngine()) {
        r.probes = probes->probes();
        r.probeHits = probes->probeHits();
        r.probeInvalidations = probes->invalidations();
    }

    r.promotions = os.promotions();
    r.splinters = os.splinters();
    return r;
}

bool
SimEngine::checkDirectoryInvariant() const
{
    if (!directory_)
        return true;
    // One-shot run of the shared directory-consistency audit with a
    // collecting handler (the full bidirectional MOESI cross-check).
    check::InvariantAuditor auditor;
    std::uint64_t found = 0;
    auditor.setViolationHandler(
        [&found](const check::Violation &) { ++found; });

    std::vector<const L1Cache *> l1s;
    l1s.reserve(complexes_.size());
    for (const auto &cx : complexes_)
        l1s.push_back(&const_cast<CoreComplex &>(*cx).l1());
    auditor.registerCheck("directory", [&](check::AuditContext &ctx) {
        check::auditDirectoryConsistency(*directory_, l1s, ctx);
    });
    auditor.runAll(0);
    return found == 0;
}

} // namespace seesaw
