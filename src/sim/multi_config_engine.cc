#include "sim/multi_config_engine.hh"

#include <algorithm>
#include <sstream>

#include "check/invariant_auditor.hh"
#include "common/bitops.hh"
#include "common/logging.hh"

namespace seesaw {

namespace {

/** The TLB geometry a config implies (sim/core_complex.cc order):
 *  substrates matching on this share one hierarchy per core. The
 *  replacement policy is part of the key — TLBs own policy side-state,
 *  so substrates differing in victim selection walk different fill
 *  sequences and must fork into separate groups. */
std::string
tlbGeometryKey(const SystemConfig &config)
{
    std::ostringstream os;
    os << (config.coreKind == CoreKind::InOrder ? "atom" : "snb") << '|'
       << config.unifiedL1Tlb << '|' << config.unifiedL1TlbEntries
       << '|' << static_cast<int>(config.replacement.kind) << '|'
       << config.replacement.rripBits << '|'
       << config.replacement.seed;
    return os.str();
}

TlbHierarchyParams
tlbParamsFor(const SystemConfig &config)
{
    TlbHierarchyParams params = config.coreKind == CoreKind::InOrder
                                    ? TlbHierarchyParams::atom()
                                    : TlbHierarchyParams::sandybridge();
    if (config.unifiedL1Tlb) {
        params.unifiedL1 = true;
        params.unifiedL1Entries = config.unifiedL1TlbEntries;
    }
    return params;
}

} // namespace

std::string
MultiConfigEngine::frontEndKey(const SystemConfig &c)
{
    // Every field the shared front end reads: workload mapping, OS and
    // fragmentation state, streams, the OS-event schedule, and the
    // fabric kind (coherence is restricted to compatible fabrics).
    std::ostringstream os;
    os << c.cores << '|' << c.seed << '|' << c.instructions << '|'
       << c.warmupInstructions << '|' << c.contextSwitchInterval << '|'
       << c.promotionInterval << '|' << c.splinterInterval << '|'
       << c.useOneGbHeap << '|' << c.modelInstructionCache << '|'
       << c.codeThpEligibleFraction << '|' << c.memhogFraction << '|'
       << static_cast<int>(c.fabric) << '|' << c.tracePath << '|'
       << c.os.memBytes << '|' << c.os.thpEnabled << '|'
       << c.os.kernelReservedFraction << '|'
       << c.os.pollutedRegionFraction << '|'
       << c.os.compactionCandidates << '|'
       << c.os.compactionBudgetPages << '|'
       << c.os.compactionMaxAttempts << '|' << c.os.seed << '|'
       << c.memhog.churn << '|' << c.memhog.pinnedProbability << '|'
       << c.memhog.meanFreeRunLength << '|' << c.memhog.seed;
    return os.str();
}

bool
MultiConfigEngine::compatibleFrontEnds(const SystemConfig &a,
                                       const SystemConfig &b)
{
    return frontEndKey(a) == frontEndKey(b);
}

MultiConfigEngine::MultiConfigEngine(std::vector<SystemConfig> configs,
                                     const WorkloadSpec &workload)
    : workload_(workload), latency_(TechNode::Intel22),
      configs_(std::move(configs)),
      eventRng_((configs_.empty() ? 0 : configs_.front().seed) ^
                0xe7e27ULL)
{
    SEESAW_ASSERT(!configs_.empty(),
                  "one-pass engine needs at least one config");
    const SystemConfig &front = configs_.front();
    SEESAW_ASSERT(front.cores >= 1 && front.cores <= 64,
                  "1-64 cores supported");
    for (const SystemConfig &c : configs_) {
        SEESAW_ASSERT(compatibleFrontEnds(front, c),
                      "incompatible front ends in one pass: ",
                      frontEndKey(front), " vs ", frontEndKey(c));
    }

    // --- Shared front end, in SimEngine's construction order: OS and
    // physical memory first (fragment, then map the footprint).
    OsParams os_params = front.os;
    os_params.seed ^= front.seed;
    os_ = std::make_unique<OsMemoryManager>(os_params);
    memhog_ = std::make_unique<Memhog>(*os_, front.memhog);
    memhog_->consume(front.memhogFraction);

    asid_ = os_->createProcess();
    heapBase_ = Addr{1} << 40;
    if (front.useOneGbHeap) {
        const Addr gb = Addr{1} << 30;
        Addr off = 0;
        while (off < workload_.footprintBytes &&
               os_->mapOneGbPage(asid_, heapBase_ + off)) {
            off += gb;
        }
        if (off < workload_.footprintBytes) {
            os_->mapAnonymous(asid_, heapBase_ + off,
                              workload_.footprintBytes - off,
                              workload_.thpEligibleFraction);
        }
    } else {
        os_->mapAnonymous(asid_, heapBase_, workload_.footprintBytes,
                          workload_.thpEligibleFraction);
    }
    if (front.modelInstructionCache) {
        textBase_ = Addr{2} << 40;
        os_->mapAnonymous(asid_, textBase_,
                          workload_.codeFootprintBytes,
                          front.codeThpEligibleFraction);
    }

    // --- TLB groups: one shared hierarchy per distinct geometry per
    // core. Construction precedes the substrates so each complex can
    // be re-pointed at its group as it is built.
    std::vector<std::size_t> group_of(configs_.size());
    std::vector<std::string> keys;
    for (std::size_t i = 0; i < configs_.size(); ++i) {
        const std::string key = tlbGeometryKey(configs_[i]);
        auto it = std::find(keys.begin(), keys.end(), key);
        if (it == keys.end()) {
            keys.push_back(key);
            TlbGroup group;
            group.exemplar = i;
            TlbHierarchyParams params = tlbParamsFor(configs_[i]);
            for (unsigned c = 0; c < front.cores; ++c) {
                // Same per-core seed derivation as CoreComplex, so a
                // group member's state sequence is bit-identical to
                // its solo run.
                params.replacement = withSeedSalt(
                    configs_[i].replacement,
                    SimEngine::coreSeed(front.seed, c) ^ 0x71bULL);
                group.tlbs.push_back(std::make_unique<TlbHierarchy>(
                    params, os_->pageTable()));
            }
            groups_.push_back(std::move(group));
            group_of[i] = groups_.size() - 1;
        } else {
            group_of[i] =
                static_cast<std::size_t>(it - keys.begin());
        }
    }

    // --- Substrates, in config order.
    substrates_.reserve(configs_.size());
    for (std::size_t i = 0; i < configs_.size(); ++i) {
        Substrate &sub = substrates_.emplace_back();
        sub.config = &configs_[i];
        sub.tlbGroup = group_of[i];
        sub.energy = std::make_unique<EnergyModel>(latency_.sram());
        if (front.cores > 1) {
            sub.sharedLlc = std::make_unique<SetAssocCache>(
                sub.config->outer.llcSizeBytes,
                sub.config->outer.llcAssoc);
        }
        for (unsigned c = 0; c < front.cores; ++c) {
            sub.complexes.push_back(std::make_unique<CoreComplex>(
                *sub.config, workload_, latency_, *os_, *sub.energy,
                asid_, heapBase_, textBase_, static_cast<CoreId>(c),
                SimEngine::coreSeed(front.seed, c),
                sub.sharedLlc.get()));
            sub.complexes.back()->setActiveTlb(
                groups_[sub.tlbGroup].tlbs[c].get());
        }
        if (front.cores > 1) {
            const unsigned probe_cycles =
                sub.complexes[0]->outer().llcCycles();
            switch (sub.config->fabric) {
              case CoherenceKind::Directory:
                sub.fabric = std::make_unique<DirectoryFabric>(
                    front.cores, probe_cycles, *sub.energy);
                break;
              case CoherenceKind::Snoopy:
                sub.fabric = std::make_unique<SnoopFabric>(
                    front.cores, probe_cycles, *sub.energy);
                break;
              case CoherenceKind::None:
                sub.fabric = std::make_unique<NullFabric>();
                break;
            }
            sub.directory = sub.fabric->directory();
            for (auto &cx : sub.complexes)
                sub.fabric->attachCore(&cx->l1(), &cx->outer().l2());
        }
        setupAuditor(sub);
    }

    // --- Group superpage hooks: a 2MB fill in a shared TLB must mark
    // the TFT of *every* member substrate, each routing I- vs D-side
    // by its own shape (bit-identical to each member's solo hook).
    for (std::size_t g = 0; g < groups_.size(); ++g) {
        for (unsigned c = 0; c < front.cores; ++c) {
            std::vector<CoreComplex *> members;
            for (Substrate &sub : substrates_) {
                if (sub.tlbGroup == g)
                    members.push_back(sub.complexes[c].get());
            }
            groups_[g].tlbs[c]->setOn2MBFill(
                [members = std::move(members)](Asid, Addr va_base) {
                    for (CoreComplex *cx : members)
                        cx->markTftRegion(va_base);
                });
        }
    }

    // --- Front-end streams: same seeds and salts as each complex's
    // own (which go unused in a one-pass run).
    for (unsigned c = 0; c < front.cores; ++c) {
        CoreFrontEnd fe;
        const std::uint64_t core_seed =
            SimEngine::coreSeed(front.seed, c);
        fe.stream = std::make_unique<ReferenceStream>(
            workload_, heapBase_, core_seed ^ 0x57ea0ULL,
            static_cast<CoreId>(c));
        if (!front.tracePath.empty())
            fe.trace = std::make_unique<TraceReader>(front.tracePath);
        if (front.modelInstructionCache) {
            CodeStreamParams code_params;
            code_params.codeBytes = workload_.codeFootprintBytes;
            fe.code = std::make_unique<CodeStream>(
                code_params, textBase_, core_seed ^ 0xc0deULL);
        }
        fe.nextContextSwitch = front.contextSwitchInterval;
        cores_.push_back(std::move(fe));
    }

    nextPromotion_ = front.promotionInterval;
    nextSplinter_ = front.splinterInterval;

    dProbe_.resize(substrates_.size());
    iProbe_.resize(substrates_.size());
    transitions_.resize(substrates_.size());
    trs_.resize(groups_.size());
    itrs_.resize(groups_.size());
}

MultiConfigEngine::~MultiConfigEngine() = default;

void
MultiConfigEngine::setupAuditor(Substrate &sub)
{
    if (sub.config->audit.mode == check::AuditMode::Off)
        return;
    if (!check::kAuditCompiledIn) {
        SEESAW_WARN("audit mode '",
                    check::auditModeName(sub.config->audit.mode),
                    "' requested but the audit layer is compiled out; "
                    "rebuild with -DSEESAW_AUDIT=ON");
        return;
    }
    sub.auditor =
        std::make_unique<check::InvariantAuditor>(sub.config->audit);
    std::vector<CoreComplex *> cxs;
    cxs.reserve(sub.complexes.size());
    for (auto &cx : sub.complexes)
        cxs.push_back(cx.get());
    registerSystemAudits(*sub.auditor, *sub.config, std::move(cxs),
                         sub.sharedLlc.get(), sub.directory, *os_,
                         asid_);
}

MemRef
MultiConfigEngine::nextRef(CoreFrontEnd &fe)
{
    if (!fe.trace)
        return fe.stream->next();
    if (auto ref = fe.trace->next())
        return *ref;
    fe.trace =
        std::make_unique<TraceReader>(configs_.front().tracePath);
    auto ref = fe.trace->next();
    SEESAW_ASSERT(ref, "empty trace file: ",
                  configs_.front().tracePath);
    return *ref;
}

void
MultiConfigEngine::applyPromotion(const PromotionEvent &event)
{
    // Shoot down the 512 stale base-page translations once per shared
    // TLB, then sweep and stall every substrate (§IV-C2).
    for (TlbGroup &group : groups_) {
        for (auto &tlb : group.tlbs) {
            for (unsigned i = 0; i < 512; ++i)
                tlb->invalidatePage(event.asid,
                                    event.vaBase + i * 4096ULL);
        }
    }
    for (Substrate &sub : substrates_) {
        for (auto &cx : sub.complexes) {
            for (Addr old_pa : event.oldPaBases)
                cx->l1().sweepRegion(old_pa, 4096);
            cx->cpu().addStallCycles(sub.config->shootdownCycles);
        }
        if (sub.directory) {
            for (Addr old_pa : event.oldPaBases) {
                for (CoreId c = 0; c < sub.complexes.size(); ++c) {
                    for (Addr line = old_pa; line < old_pa + 4096;
                         line += 64)
                        sub.directory->recordEviction(c, line);
                }
            }
        }
    }
}

void
MultiConfigEngine::applySplinter(const SplinterEvent &event)
{
    for (TlbGroup &group : groups_) {
        for (auto &tlb : group.tlbs)
            tlb->invalidatePage(event.asid, event.vaBase);
    }
    for (Substrate &sub : substrates_) {
        for (auto &cx : sub.complexes) {
            if (SeesawCache *cache = cx->seesawL1())
                cache->tft().invalidateRegion(event.vaBase);
            cx->cpu().addStallCycles(sub.config->shootdownCycles);
        }
    }
}

void
MultiConfigEngine::unmapBroadcast(Addr va_base, std::uint64_t bytes)
{
    os_->unmapRange(asid_, va_base, bytes);
    const Addr end = va_base + alignUp(bytes, 4096);
    for (TlbGroup &group : groups_) {
        for (auto &tlb : group.tlbs) {
            for (Addr va = alignDown(va_base, 4096); va < end;
                 va += 4096)
                tlb->invalidatePage(asid_, va);
        }
    }
    const Addr region_end = alignUp(end, 2 * 1024 * 1024);
    for (Substrate &sub : substrates_) {
        for (auto &cx : sub.complexes) {
            for (Addr va = alignDown(va_base, 2 * 1024 * 1024);
                 va < region_end; va += 2 * 1024 * 1024) {
                if (SeesawCache *cache = cx->seesawL1())
                    cache->tft().invalidateRegion(va);
                if (SeesawCache *cache = cx->seesawL1i())
                    cache->tft().invalidateRegion(va);
            }
            cx->cpu().addStallCycles(sub.config->shootdownCycles);
        }
    }
}

void
MultiConfigEngine::osTick(CoreId c)
{
    CoreFrontEnd &fe = cores_[c];
    const SystemConfig &front = configs_.front();
    const std::uint64_t retired = fe.retiredTotal;

    if (front.contextSwitchInterval &&
        retired >= fe.nextContextSwitch) {
        fe.nextContextSwitch += front.contextSwitchInterval;
        // The TFT carries no ASID tags; context switches flush it.
        for (Substrate &sub : substrates_) {
            if (SeesawCache *cache = sub.complexes[c]->seesawL1())
                cache->tft().flush();
        }
    }

    if (c != 0)
        return;

    if (front.promotionInterval && retired >= nextPromotion_) {
        nextPromotion_ += front.promotionInterval;
        for (const auto &event : os_->runPromotionPass(asid_, 2))
            applyPromotion(event);
    }

    if (front.splinterInterval && retired >= nextSplinter_) {
        nextSplinter_ += front.splinterInterval;
        const auto supers = os_->superpageVas(asid_);
        if (!supers.empty()) {
            const Addr va =
                supers[eventRng_.nextBounded(supers.size())];
            if (auto event = os_->splinter(asid_, va))
                applySplinter(*event);
        }
    }
}

std::uint64_t
MultiConfigEngine::step(CoreId c, std::uint64_t room)
{
    CoreFrontEnd &fe = cores_[c];
    MemRef ref = nextRef(fe);
    if (ref.gap + 1ULL > room)
        ref.gap = static_cast<std::uint32_t>(room > 0 ? room - 1 : 0);

    for (Substrate &sub : substrates_)
        sub.complexes[c]->cpu().retireNonMemory(ref.gap);

    // Pre-TLB TFT probes: every substrate samples its own TFT before
    // any shared 2MB refresh fires.
    for (std::size_t s = 0; s < substrates_.size(); ++s)
        dProbe_[s] = substrates_[s].complexes[c]->probeDataTft(ref.va);

    // One lookup per TLB group — the shared work the pass exists for.
    for (std::size_t g = 0; g < groups_.size(); ++g)
        trs_[g] = groups_[g].tlbs[c]->lookup(asid_, ref.va);

    // Translation is config-invariant, so every group agrees on
    // whether the access faults.
    const bool faulted = trs_[0].fault;
    for (const TlbLookupResult &tr : trs_) {
        SEESAW_ASSERT(tr.fault == faulted,
                      "substrates disagree on a page fault");
    }

    for (std::size_t s = 0; s < substrates_.size(); ++s) {
        substrates_[s].complexes[c]->chargeTranslation(
            trs_[substrates_[s].tlbGroup]);
    }

    if (faulted) {
        // Demand-page once; each group retries its lookup (identical
        // to every member's solo fault path).
        os_->mapAnonymous(asid_, alignDown(ref.va, 2 * 1024 * 1024),
                          2 * 1024 * 1024,
                          workload_.thpEligibleFraction);
        for (std::size_t g = 0; g < groups_.size(); ++g) {
            trs_[g] = groups_[g].tlbs[c]->lookup(asid_, ref.va);
            SEESAW_ASSERT(!trs_[g].fault,
                          "fault persists after demand paging");
        }
    }

    for (std::size_t s = 0; s < substrates_.size(); ++s) {
        Substrate &sub = substrates_[s];
        transitions_[s] =
            sub.complexes[c]->finishMemoryAccess(
                ref, trs_[sub.tlbGroup], dProbe_[s],
                sub.fabric.get())
                ? 1
                : 0;
    }

    // Instruction fetches: the front end owns the fetch carry and the
    // fetch-line stream; substrates complete each line independently.
    if (fe.code) {
        fe.fetchCarry += static_cast<double>(ref.gap + 1) / 4.0;
        auto fetches = static_cast<std::uint64_t>(fe.fetchCarry);
        fe.fetchCarry -= static_cast<double>(fetches);
        while (fetches-- > 0) {
            const Addr va = fe.code->nextFetchLine();
            for (std::size_t s = 0; s < substrates_.size(); ++s) {
                iProbe_[s] =
                    substrates_[s].complexes[c]->probeCodeTft(va);
            }
            for (std::size_t g = 0; g < groups_.size(); ++g) {
                itrs_[g] = groups_[g].tlbs[c]->lookup(asid_, va);
                SEESAW_ASSERT(!itrs_[g].fault,
                              "text segment must be premapped");
            }
            for (std::size_t s = 0; s < substrates_.size(); ++s) {
                Substrate &sub = substrates_[s];
                sub.complexes[c]->chargeTranslation(
                    itrs_[sub.tlbGroup]);
                sub.complexes[c]->finishFetch(
                    va, itrs_[sub.tlbGroup], iProbe_[s]);
            }
        }
    }

    fe.retiredTotal += ref.gap + 1;
    for (Substrate &sub : substrates_) {
        sub.complexes[c]->retiredTotal_ += ref.gap + 1;
        if (ProbeEngine *probes = sub.complexes[c]->probeEngine())
            probes->tick(ref.gap + 1);
    }
    osTick(c);
    if constexpr (check::kAuditCompiledIn) {
        for (std::size_t s = 0; s < substrates_.size(); ++s) {
            Substrate &sub = substrates_[s];
            if (!sub.auditor)
                continue;
            const Cycles now = sub.complexes[c]->cpu().cycles();
            if (sub.fabric && transitions_[s])
                sub.auditor->onCoherenceTransition(now);
            sub.auditor->onEvent(ref.gap + 1, now);
        }
    }
    return ref.gap + 1;
}

void
MultiConfigEngine::runLoop(std::uint64_t per_core_budget)
{
    std::vector<std::uint64_t> retired(cores_.size(), 0);
    bool progress = true;
    while (progress) {
        progress = false;
        for (CoreId c = 0; c < cores_.size(); ++c) {
            if (retired[c] < per_core_budget) {
                retired[c] += step(c, per_core_budget - retired[c]);
                progress = true;
            }
        }
    }
}

void
MultiConfigEngine::resetMeasurement()
{
    for (Substrate &sub : substrates_) {
        for (auto &cx : sub.complexes)
            cx->resetMeasurement();
        sub.energy->reset();
        if (sub.fabric)
            sub.fabric->resetStats();
    }
}

std::vector<RunResult>
MultiConfigEngine::run()
{
    const SystemConfig &front = configs_.front();
    if (front.warmupInstructions > 0) {
        runLoop(front.warmupInstructions);
        resetMeasurement();
    }
    runLoop(front.instructions);

    std::vector<RunResult> results;
    results.reserve(substrates_.size());
    for (Substrate &sub : substrates_) {
        Cycles max_cycles = 0;
        for (auto &cx : sub.complexes)
            max_cycles = std::max(max_cycles, cx->cpu().cycles());

        if constexpr (check::kAuditCompiledIn) {
            if (sub.auditor)
                sub.auditor->onEndOfRun(max_cycles);
        }

        for (auto &cx : sub.complexes) {
            sub.energy->addL1Leakage(sub.config->l1SizeBytes,
                                     max_cycles, sub.config->freqGhz);
            if (cx->l1i())
                sub.energy->addL1Leakage(32 * 1024, max_cycles,
                                         sub.config->freqGhz);
        }
        sub.energy->addBackground(max_cycles, sub.config->freqGhz);

        std::vector<CoreComplex *> cxs;
        cxs.reserve(sub.complexes.size());
        for (auto &cx : sub.complexes)
            cxs.push_back(cx.get());
        results.push_back(collectRunResults(
            *sub.config, workload_, cxs, *sub.energy,
            sub.fabric.get(), *os_, asid_, max_cycles));
    }
    return results;
}

} // namespace seesaw
