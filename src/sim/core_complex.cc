#include "sim/core_complex.hh"

#include "cache/sipt_cache.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace seesaw {

CoreComplex::CoreComplex(const SystemConfig &config,
                         const WorkloadSpec &workload,
                         const LatencyTable &latency,
                         OsMemoryManager &os, EnergyModel &energy,
                         Asid asid, Addr heap_base, Addr text_base,
                         CoreId core, std::uint64_t core_seed,
                         SetAssocCache *shared_llc)
    : config_(config), workload_(workload), os_(os), energy_(energy),
      asid_(asid), core_(core)
{
    // --- TLBs (preset follows the core model, Table II; optionally a
    // unified fully-associative L1, which SEESAW supports equally).
    TlbHierarchyParams tlb_params =
        config_.coreKind == CoreKind::InOrder
            ? TlbHierarchyParams::atom()
            : TlbHierarchyParams::sandybridge();
    if (config_.unifiedL1Tlb) {
        tlb_params.unifiedL1 = true;
        tlb_params.unifiedL1Entries = config_.unifiedL1TlbEntries;
    }
    // Replacement seeds decorrelate per structure AND per core: the
    // hierarchy salts each level on top of this per-core base. A
    // MultiConfigEngine's shared TLB groups derive the identical seed
    // (sim/multi_config_engine.cc), keeping one-pass runs bit-equal.
    tlb_params.replacement =
        withSeedSalt(config_.replacement, core_seed ^ 0x71bULL);
    tlb_ = std::make_unique<TlbHierarchy>(tlb_params, os_.pageTable());
    activeTlb_ = tlb_.get();

    // --- L1 cache. All designs share the D-side replacement seed
    // derivation (SeesawCache further salts its TFT internally).
    const ReplacementParams l1d_replacement =
        withSeedSalt(config_.replacement, core_seed ^ 0x5e1ecULL);
    switch (config_.l1Kind) {
      case L1Kind::ViptBaseline:
      case L1Kind::ViptWayPredicted: {
        BaselineL1Config c;
        c.sizeBytes = config_.l1SizeBytes;
        c.assoc = config_.l1Assoc;
        c.freqGhz = config_.freqGhz;
        c.wayPrediction =
            config_.l1Kind == L1Kind::ViptWayPredicted;
        c.replacement = l1d_replacement;
        l1_ = std::make_unique<ViptCache>(c, latency);
        break;
      }
      case L1Kind::Pipt: {
        BaselineL1Config c;
        c.sizeBytes = config_.l1SizeBytes;
        c.assoc = config_.l1Assoc;
        c.freqGhz = config_.freqGhz;
        c.replacement = l1d_replacement;
        l1_ = std::make_unique<PiptCache>(c, latency,
                                          config_.piptTlbCycles);
        break;
      }
      case L1Kind::Sipt: {
        SiptConfig c;
        c.sizeBytes = config_.l1SizeBytes;
        c.assoc = config_.siptAssoc;
        c.freqGhz = config_.freqGhz;
        c.replacement = l1d_replacement;
        l1_ = std::make_unique<SiptCache>(c, latency);
        break;
      }
      case L1Kind::Seesaw:
      case L1Kind::SeesawWayPredicted: {
        SeesawConfig c;
        c.sizeBytes = config_.l1SizeBytes;
        c.assoc = config_.l1Assoc;
        c.partitionWays = config_.partitionWays;
        c.freqGhz = config_.freqGhz;
        c.policy = config_.policy;
        c.tftEntries = config_.tftEntries;
        c.tftAssoc = config_.tftAssoc;
        c.wayPrediction =
            config_.l1Kind == L1Kind::SeesawWayPredicted;
        c.replacement = l1d_replacement;
        auto cache = std::make_unique<SeesawCache>(c, latency);
        seesawD_ = cache.get();
        l1_ = std::move(cache);
        break;
      }
    }

    l1SizeBytes_ = l1_->tags().sizeBytes();
    l1Assoc_ = l1_->tags().assoc();
    l1LineBytes_ = l1_->tags().lineBytes();

    prefetcher_ = PrefetchEngine::create(config_.prefetch,
                                         l1LineBytes_);

    outer_ = std::make_unique<OuterHierarchy>(config_.outer,
                                              config_.freqGhz,
                                              shared_llc);

    // --- Core model (concrete CpuModel: the retire fast path branches
    // on the kind instead of virtual-dispatching).
    cpu_ = std::make_unique<CpuModel>(
        config_.coreKind, config_.coreKind == CoreKind::InOrder
                              ? CpuParams::atom()
                              : CpuParams::sandybridge());

    // --- Coherence probe load. Single-core runs model coherence as
    // the paper's stochastic probe stream; multi-core runs get the
    // real fabric (owned by the engine) instead.
    if (config_.cores == 1 && config_.fabric != CoherenceKind::None) {
        ProbeEngineParams pe;
        pe.systemProbesPerKiloInstr =
            workload_.systemProbesPerKiloInstr;
        pe.remoteThreads =
            workload_.threads > 0 ? workload_.threads - 1 : 0;
        pe.sharedFraction = workload_.sharedFraction;
        pe.fabric = config_.fabric;
        pe.seed = core_seed ^ 0x9097eULL;
        probes_ = std::make_unique<ProbeEngine>(pe, *l1_, energy_);
    }

    stream_ = std::make_unique<ReferenceStream>(
        workload_, heap_base, core_seed ^ 0x57ea0ULL, core_);
    if (!config_.tracePath.empty())
        trace_ = std::make_unique<TraceReader>(config_.tracePath);

    // --- Optional L1 instruction cache (§V). The engine maps the
    // text segment (shared by all cores) before building complexes.
    if (config_.modelInstructionCache) {
        textBase_ = text_base;
        CodeStreamParams code_params;
        code_params.codeBytes = workload_.codeFootprintBytes;
        code_ = std::make_unique<CodeStream>(
            code_params, textBase_, core_seed ^ 0xc0deULL);

        // Prefill the LLC with the hot-text prefix (hot/cold-split
        // layout puts the hot functions at the front).
        const Addr hot_text_end =
            textBase_ + std::min<std::uint64_t>(
                            workload_.codeFootprintBytes, 4ULL << 20);
        for (Addr va = textBase_; va < hot_text_end; va += 64) {
            if (auto t = os_.translate(asid_, va))
                outer_->prefill(t->translate(va));
        }

        const bool seesaw_icache =
            config_.icacheKind == SystemConfig::ICacheKind::Seesaw ||
            (config_.icacheKind ==
                 SystemConfig::ICacheKind::FollowL1 &&
             isSeesawKind());
        if (seesaw_icache) {
            SeesawConfig ic;
            ic.sizeBytes = 32 * 1024; // Table II: split 32KB L1I
            ic.assoc = 8;
            ic.partitionWays = config_.partitionWays;
            ic.freqGhz = config_.freqGhz;
            ic.policy = config_.policy;
            ic.tftEntries = config_.tftEntries;
            ic.tftAssoc = config_.tftAssoc;
            ic.replacement = withSeedSalt(config_.replacement,
                                          core_seed ^ 0x15e1ecULL);
            auto icache = std::make_unique<SeesawCache>(ic, latency);
            seesawI_ = icache.get();
            l1i_ = std::move(icache);
        } else {
            BaselineL1Config ic;
            ic.sizeBytes = 32 * 1024;
            ic.assoc = 8;
            ic.freqGhz = config_.freqGhz;
            ic.replacement = withSeedSalt(config_.replacement,
                                          core_seed ^ 0x15e1ecULL);
            l1i_ = std::make_unique<ViptCache>(ic, latency);
        }
    }

    // Wire the superpage hook into the TLB hierarchy: every 2MB L1 TLB
    // fill marks the region in the owning side's TFT (Fig 5;
    // markTftRegion routes I- vs D-side). A MultiConfigEngine
    // re-points this at a shared group TLB that broadcasts to every
    // member complex.
    if (seesawD_ || seesawI_) {
        tlb_->setOn2MBFill(
            [this](Asid, Addr va_base) { markTftRegion(va_base); });
    }

    // Steady-state warmup: prefill the LLC with the stream's hot
    // ranges so measurement does not start from an unrealistically
    // cold outer hierarchy (the paper's traces span 10B instructions).
    for (const auto &[begin, end] : stream_->hotRanges()) {
        for (Addr va = begin; va < end; va += 64) {
            if (auto t = os_.translate(asid_, va))
                outer_->prefill(t->translate(va));
        }
    }

    nextContextSwitch_ = config_.contextSwitchInterval;
}

CoreComplex::~CoreComplex() = default;

MemRef
CoreComplex::nextRef()
{
    if (!trace_) {
        return stream_->next();
    }
    if (auto ref = trace_->next())
        return *ref;
    // Loop the trace when it is shorter than the budget.
    trace_ = std::make_unique<TraceReader>(config_.tracePath);
    auto ref = trace_->next();
    SEESAW_ASSERT(ref, "empty trace file: ", config_.tracePath);
    return *ref;
}

int
CoreComplex::probeDataTft(Addr va)
{
    // Probe the TFT with its pre-TLB state: hardware reads the TFT and
    // the L1 TLBs in parallel, and a 2MB TLB hit may refresh the very
    // entry being probed — the refresh must not be visible to this
    // access.
    if (SeesawCache *cache = seesawD_)
        return cache->tft().lookup(va) ? 1 : 0;
    return -1;
}

int
CoreComplex::probeCodeTft(Addr va)
{
    if (seesawI_)
        return seesawI_->tft().lookup(va) ? 1 : 0;
    return -1;
}

void
CoreComplex::chargeTranslation(const TlbLookupResult &tr)
{
    energy_.addL1TlbLookup();
    if (!tr.l1Hit)
        energy_.addL2TlbLookup();
    if (tr.walked)
        energy_.addPageWalk();
    if (tr.fault) {
        ++pageFaults_;
        cpu_->addStallCycles(2000);
    }
}

void
CoreComplex::markTftRegion(Addr va_base)
{
    // The single TLB hierarchy serves both sides; route the superpage
    // notification to the TFT of the side the address belongs to (real
    // split ITLB/DTLBs would do this naturally). A VIPT L1I keeps code
    // regions out of the D-side TFT.
    if (l1i_ && va_base >= textBase_) {
        if (seesawI_)
            seesawI_->tft().markRegion(va_base);
        return;
    }
    if (seesawD_)
        seesawD_->tft().markRegion(va_base);
}

std::uint64_t
CoreComplex::takeFetchLines(std::uint64_t instructions)
{
    if (!l1i_)
        return 0;
    // 16-byte fetch groups: one 64B line fetch per ~4 instructions.
    fetchCarry_ += static_cast<double>(instructions) / 4.0;
    auto fetches = static_cast<std::uint64_t>(fetchCarry_);
    fetchCarry_ -= static_cast<double>(fetches);
    return fetches;
}

void
CoreComplex::finishFetch(Addr va, const TlbLookupResult &tr,
                         int tft_probe)
{
    const Addr pa = tr.translation.translate(va);
    L1Access req{va, pa, tr.translation.size, AccessType::Read,
                 tft_probe};
    const L1AccessResult res =
        seesawI_ ? seesawI_->access(req) : l1i_->access(req);
    if (seesawI_)
        energy_.addTftLookup();
    energy_.addL1Lookup(32 * 1024, 8, res.waysRead, false);

    if (!res.hit) {
        const OuterAccessResult outer =
            outer_->access(pa, AccessType::Read);
        energy_.addL2Access();
        if (outer.llcAccessed)
            energy_.addLlcAccess();
        if (outer.dramAccessed)
            energy_.addDramAccess();
        energy_.addLineInstall(res.installWays);
        // Front-end refill: the decode queue hides part of it.
        cpu_->addStallCycles(static_cast<Cycles>(outer.cycles * 0.4));
    }
    if (tr.penaltyCycles)
        cpu_->addStallCycles(tr.penaltyCycles / 2);
}

void
CoreComplex::doInstructionFetches(std::uint64_t instructions)
{
    std::uint64_t fetches = takeFetchLines(instructions);
    while (fetches-- > 0) {
        const Addr va = code_->nextFetchLine();
        const int tft_probe = probeCodeTft(va);
        const TlbLookupResult tr = activeTlb_->lookup(asid_, va);
        chargeTranslation(tr);
        SEESAW_ASSERT(!tr.fault, "text segment must be premapped");
        finishFetch(va, tr, tft_probe);
    }
}

bool
CoreComplex::doMemoryAccess(const MemRef &ref, CoherenceFabric *fabric)
{
    // 0. Pre-TLB TFT probe.
    const int tft_probe = probeDataTft(ref.va);

    // 1. Translate (the L1 TLB probe runs in parallel with L1 set
    //    selection; only L2-TLB latency and walks are exposed).
    TlbLookupResult tr = activeTlb_->lookup(asid_, ref.va);
    chargeTranslation(tr);
    if (tr.fault) {
        // Demand-page and retry. Synthetic footprints are premapped so
        // this is rare; trace replay relies on it. The whole 2MB chunk
        // is populated so THP can back it (Linux fault-around).
        os_.mapAnonymous(asid_, alignDown(ref.va, 2 * 1024 * 1024),
                         2 * 1024 * 1024,
                         workload_.thpEligibleFraction);
        tr = activeTlb_->lookup(asid_, ref.va);
        SEESAW_ASSERT(!tr.fault, "fault persists after demand paging");
    }

    return finishMemoryAccess(ref, tr, tft_probe, fabric);
}

bool
CoreComplex::finishMemoryAccess(const MemRef &ref,
                                const TlbLookupResult &tr,
                                int tft_probe, CoherenceFabric *fabric)
{
    const Addr pa = tr.translation.translate(ref.va);
    const PageSize page_size = tr.translation.size;

    // 2. Coherence ordering point: writes invalidate remote copies
    //    before the local access; read misses may be owner-supplied.
    FabricPreAccess pre;
    if (fabric)
        pre = fabric->preAccess(core_, pa, ref.type);

    // 3. L1 access (direct call into the final SeesawCache class when
    // the design is SEESAW; virtual dispatch otherwise).
    L1Access req{ref.va, pa, page_size, ref.type, tft_probe};
    const L1AccessResult res =
        seesawD_ ? seesawD_->access(req) : l1_->access(req);

    if (seesawD_)
        energy_.addTftLookup();
    if (res.wpUsed)
        energy_.addWayPredictorLookup();
    energy_.addL1Lookup(l1SizeBytes_, l1Assoc_, res.waysRead,
                        /*coherent=*/false);
    if (probes_)
        probes_->noteResident(pa);

    // 4. Miss handling in the outer hierarchy.
    unsigned miss_penalty = pre.cycles;
    if (!res.hit) {
        if (pre.ownerSupplied) {
            // Cache-to-cache transfer: a dirty remote owner forwards
            // the line, so the LLC/DRAM data arrays are never read.
            miss_penalty += outer_->l2Cycles() + outer_->llcCycles();
            energy_.addL2Access();
        } else {
            const OuterAccessResult outer =
                outer_->access(pa, ref.type);
            miss_penalty += outer.cycles;
            energy_.addL2Access();
            if (outer.llcAccessed)
                energy_.addLlcAccess();
            if (outer.dramAccessed)
                energy_.addDramAccess();
        }
        energy_.addLineInstall(res.installWays);
        if (res.eviction.valid && res.eviction.dirty()) {
            outer_->writeback(res.eviction.lineAddr * l1LineBytes_);
            energy_.addL2Access();
        }
    } else if (res.wasPrefetched) {
        // First demand hit on a line the prefetcher installed.
        ++prefetchUseful_;
    }

    if (fabric)
        fabric->postAccess(core_, pa, ref.type, res, pre);

    // 5. Core timing.
    MemTiming timing;
    timing.hit = res.hit;
    timing.missPenalty = miss_penalty;
    timing.lateDiscovery = res.lateDiscovery || !res.hit;
    if (config_.coreKind == CoreKind::InOrder) {
        // In-order pipelines have no speculative wakeup: data is
        // consumed whenever it arrives, so the L1's actual latency is
        // the exposed latency (this is why SEESAW helps in-order cores
        // more, Fig 9).
        timing.lookupCycles = res.latencyCycles;
        timing.assumedCycles = res.latencyCycles;
    } else {
        // The out-of-order scheduler speculatively wakes dependents at
        // an assumed latency (§IV-B3): SEESAW assumes the fast hit
        // unless the superpage-TLB occupancy counter says superpages
        // are scarce; other designs assume their base hit time.
        unsigned assumed = l1_->baseHitCycles();
        if (isSeesawKind()) {
            const bool assume_fast =
                !config_.schedulerCounterPolicy ||
                activeTlb_->superpagesAmple();
            assumed = assume_fast ? l1_->fastHitCycles()
                                  : l1_->baseHitCycles();
        } else if (config_.l1Kind == L1Kind::Sipt) {
            // SIPT is speculation-first by construction: the scheduler
            // always assumes the speculative index was right and
            // replays otherwise.
            assumed = l1_->fastHitCycles();
        }
        // A hit that returns earlier than the scheduled wakeup cannot
        // retire dependents early: the effective latency is the
        // assumed one. A later return forces a squash (charged by the
        // core model).
        timing.lookupCycles = std::max(res.latencyCycles, assumed);
        timing.assumedCycles = assumed;
    }
    cpu_->retireMemory(timing);

    // 6. TLB miss penalties serialise before the tag check only beyond
    //    the L1 TLB (VIPT hides the L1 probe).
    if (tr.penaltyCycles)
        cpu_->addStallCycles(tr.penaltyCycles);

    // 7. Prefetch: train on the demand access, then issue the legal
    //    candidates as demand-like fills (off the critical path — no
    //    core timing impact beyond the energy/occupancy effects).
    bool prefetched = false;
    if (prefetcher_)
        prefetched = issuePrefetches(ref, tr, !res.hit, fabric);

    return ref.type == AccessType::Write || !res.hit || prefetched;
}

bool
CoreComplex::issuePrefetches(const MemRef &ref,
                             const TlbLookupResult &tr,
                             bool demand_miss, CoherenceFabric *fabric)
{
    pfCandidates_.clear();
    prefetcher_->observe(ref.va, demand_miss, pfCandidates_);
    if (pfCandidates_.empty())
        return false;

    // Legality: a candidate is issuable only inside the page backing
    // the triggering access — its PA comes from the same translation,
    // so the fill lands in the partition that translation names. A
    // candidate beyond the page would need its own TLB lookup and
    // could map to a different partition; drop it (counted).
    const Addr page_base = tr.translation.vaBase;
    const Addr page_end = page_base + pageBytes(tr.translation.size);

    bool issued = false;
    for (const Addr pf_va : pfCandidates_) {
        if (pf_va < page_base || pf_va >= page_end) {
            ++prefetchIllegalCrossing_;
            continue;
        }
        const Addr pf_pa = tr.translation.translate(pf_va);
        if (l1_->tags().peek(pf_pa).hit) {
            // Already resident: the prefetch would have had to be
            // issued earlier to help.
            ++prefetchLate_;
            continue;
        }

        // Issue like a demand read miss: coherence ordering, outer
        // fetch, L1 install (tagged prefetched), eviction writeback.
        FabricPreAccess pre;
        if (fabric)
            pre = fabric->preAccess(core_, pf_pa, AccessType::Read);
        ++prefetchIssued_;
        if (pre.ownerSupplied) {
            energy_.addL2Access();
        } else {
            const OuterAccessResult outer =
                outer_->access(pf_pa, AccessType::Read);
            energy_.addL2Access();
            if (outer.llcAccessed)
                energy_.addLlcAccess();
            if (outer.dramAccessed)
                energy_.addDramAccess();
        }
        L1AccessResult pf_res;
        pf_res.hit = false;
        pf_res.eviction =
            l1_->prefetchFill(pf_pa, tr.translation.size);
        energy_.addLineInstall(1);
        if (pf_res.eviction.valid && pf_res.eviction.dirty()) {
            outer_->writeback(pf_res.eviction.lineAddr *
                              l1LineBytes_);
            energy_.addL2Access();
        }
        if (fabric)
            fabric->postAccess(core_, pf_pa, AccessType::Read, pf_res,
                               pre);
        if (probes_)
            probes_->noteResident(pf_pa);
        issued = true;
    }
    return issued;
}

void
CoreComplex::resetMeasurement()
{
    cpu_->resetCounters();
    l1_->stats().resetAll();
    if (l1i_)
        l1i_->stats().resetAll();
    outer_->stats().resetAll();
    if (probes_)
        probes_->stats().resetAll();
    if (SeesawCache *cache = seesawD_)
        cache->tft().stats().resetAll();
    pageFaults_ = 0;
    prefetchIssued_ = 0;
    prefetchUseful_ = 0;
    prefetchLate_ = 0;
    prefetchIllegalCrossing_ = 0;
}

} // namespace seesaw
