#include "sim/system.hh"

#include "cache/sipt_cache.hh"

#include <algorithm>

#include "check/cache_audits.hh"
#include "check/invariant_auditor.hh"
#include "check/mem_audits.hh"
#include "check/tlb_audits.hh"
#include "common/bitops.hh"
#include "common/logging.hh"

namespace seesaw {

System::System(const SystemConfig &config, const WorkloadSpec &workload)
    : config_(config), workload_(workload), latency_(TechNode::Intel22),
      eventRng_(config.seed ^ 0xe7e27ULL)
{
    energy_ = std::make_unique<EnergyModel>(latency_.sram());

    // --- OS and physical memory. Fragment first (long-uptime host),
    // then map the workload's footprint.
    OsParams os_params = config_.os;
    os_params.seed ^= config_.seed;
    os_ = std::make_unique<OsMemoryManager>(os_params);
    memhog_ = std::make_unique<Memhog>(*os_, config_.memhog);
    memhog_->consume(config_.memhogFraction);

    asid_ = os_->createProcess();
    heapBase_ = Addr{1} << 40; // 1GB-aligned heap base
    if (config_.useOneGbHeap) {
        // §IV generalisation: back the heap with 1GB pages where the
        // allocator can find gigabyte contiguity, THP elsewhere.
        const Addr gb = Addr{1} << 30;
        Addr off = 0;
        while (off < workload_.footprintBytes &&
               os_->mapOneGbPage(asid_, heapBase_ + off)) {
            off += gb;
        }
        if (off < workload_.footprintBytes) {
            os_->mapAnonymous(asid_, heapBase_ + off,
                              workload_.footprintBytes - off,
                              workload_.thpEligibleFraction);
        }
    } else {
        os_->mapAnonymous(asid_, heapBase_, workload_.footprintBytes,
                          workload_.thpEligibleFraction);
    }

    // --- TLBs (preset follows the core model, Table II; optionally a
    // unified fully-associative L1, which SEESAW supports equally).
    TlbHierarchyParams tlb_params =
        config_.coreKind == CoreKind::InOrder
            ? TlbHierarchyParams::atom()
            : TlbHierarchyParams::sandybridge();
    if (config_.unifiedL1Tlb) {
        tlb_params.unifiedL1 = true;
        tlb_params.unifiedL1Entries = config_.unifiedL1TlbEntries;
    }
    tlb_ = std::make_unique<TlbHierarchy>(tlb_params, os_->pageTable());

    // --- L1 cache.
    switch (config_.l1Kind) {
      case L1Kind::ViptBaseline:
      case L1Kind::ViptWayPredicted: {
        BaselineL1Config c;
        c.sizeBytes = config_.l1SizeBytes;
        c.assoc = config_.l1Assoc;
        c.freqGhz = config_.freqGhz;
        c.wayPrediction =
            config_.l1Kind == L1Kind::ViptWayPredicted;
        l1_ = std::make_unique<ViptCache>(c, latency_);
        break;
      }
      case L1Kind::Pipt: {
        BaselineL1Config c;
        c.sizeBytes = config_.l1SizeBytes;
        c.assoc = config_.l1Assoc;
        c.freqGhz = config_.freqGhz;
        l1_ = std::make_unique<PiptCache>(c, latency_,
                                          config_.piptTlbCycles);
        break;
      }
      case L1Kind::Sipt: {
        SiptConfig c;
        c.sizeBytes = config_.l1SizeBytes;
        c.assoc = config_.siptAssoc;
        c.freqGhz = config_.freqGhz;
        l1_ = std::make_unique<SiptCache>(c, latency_);
        break;
      }
      case L1Kind::Seesaw:
      case L1Kind::SeesawWayPredicted: {
        SeesawConfig c;
        c.sizeBytes = config_.l1SizeBytes;
        c.assoc = config_.l1Assoc;
        c.partitionWays = config_.partitionWays;
        c.freqGhz = config_.freqGhz;
        c.policy = config_.policy;
        c.tftEntries = config_.tftEntries;
        c.tftAssoc = config_.tftAssoc;
        c.wayPrediction =
            config_.l1Kind == L1Kind::SeesawWayPredicted;
        auto cache = std::make_unique<SeesawCache>(c, latency_);
        seesawD_ = cache.get();
        // Wire the TFT into the TLB hierarchy: every 2MB L1 TLB fill
        // marks the region (Fig 5).
        Tft *tft = &cache->tft();
        tlb_->setOn2MBFill(
            [tft](Asid, Addr va_base) { tft->markRegion(va_base); });
        l1_ = std::move(cache);
        break;
      }
    }

    l1SizeBytes_ = l1_->tags().sizeBytes();
    l1Assoc_ = l1_->tags().assoc();
    l1LineBytes_ = l1_->tags().lineBytes();

    outer_ = std::make_unique<OuterHierarchy>(config_.outer,
                                              config_.freqGhz);

    // --- Core model (concrete CpuModel: the retire fast path branches
    // on the kind instead of virtual-dispatching).
    cpu_ = std::make_unique<CpuModel>(
        config_.coreKind, config_.coreKind == CoreKind::InOrder
                              ? CpuParams::atom()
                              : CpuParams::sandybridge());

    // --- Coherence probe load.
    ProbeEngineParams pe;
    pe.systemProbesPerKiloInstr = workload_.systemProbesPerKiloInstr;
    pe.remoteThreads =
        workload_.threads > 0 ? workload_.threads - 1 : 0;
    pe.sharedFraction = workload_.sharedFraction;
    pe.fabric = config_.fabric;
    pe.seed = config_.seed ^ 0x9097eULL;
    probes_ = std::make_unique<ProbeEngine>(pe, *l1_, *energy_);

    stream_ = std::make_unique<ReferenceStream>(
        workload_, heapBase_, config_.seed ^ 0x57ea0ULL);
    if (!config_.tracePath.empty())
        trace_ = std::make_unique<TraceReader>(config_.tracePath);

    // --- Optional L1 instruction cache (§V).
    if (config_.modelInstructionCache) {
        textBase_ = Addr{2} << 40;
        os_->mapAnonymous(asid_, textBase_,
                          workload_.codeFootprintBytes,
                          config_.codeThpEligibleFraction);
        CodeStreamParams code_params;
        code_params.codeBytes = workload_.codeFootprintBytes;
        code_ = std::make_unique<CodeStream>(
            code_params, textBase_, config_.seed ^ 0xc0deULL);

        // Prefill the LLC with the hot-text prefix (hot/cold-split
        // layout puts the hot functions at the front).
        const Addr hot_text_end =
            textBase_ + std::min<std::uint64_t>(
                            workload_.codeFootprintBytes, 4ULL << 20);
        for (Addr va = textBase_; va < hot_text_end; va += 64) {
            if (auto t = os_->translate(asid_, va))
                outer_->prefill(t->translate(va));
        }

        const bool seesaw_icache =
            config_.icacheKind == SystemConfig::ICacheKind::Seesaw ||
            (config_.icacheKind ==
                 SystemConfig::ICacheKind::FollowL1 &&
             isSeesawKind());
        if (seesaw_icache) {
            SeesawConfig ic;
            ic.sizeBytes = 32 * 1024; // Table II: split 32KB L1I
            ic.assoc = 8;
            ic.partitionWays = config_.partitionWays;
            ic.freqGhz = config_.freqGhz;
            ic.policy = config_.policy;
            ic.tftEntries = config_.tftEntries;
            ic.tftAssoc = config_.tftAssoc;
            auto icache = std::make_unique<SeesawCache>(ic, latency_);
            seesawI_ = icache.get();
            // One TLB hierarchy serves both sides here; chain the
            // superpage hook so both TFTs learn regions.
            // The single TLB hierarchy serves both sides; route the
            // superpage hook to the TFT of the side the address
            // belongs to (real split ITLB/DTLBs would do this
            // naturally).
            Tft *itft = &icache->tft();
            Tft *dtft = seesawD_ ? &seesawD_->tft() : nullptr;
            const Addr text_base = textBase_;
            tlb_->setOn2MBFill(
                [itft, dtft, text_base](Asid, Addr va_base) {
                    if (va_base >= text_base)
                        itft->markRegion(va_base);
                    else if (dtft)
                        dtft->markRegion(va_base);
                });
            l1i_ = std::move(icache);
        } else {
            BaselineL1Config ic;
            ic.sizeBytes = 32 * 1024;
            ic.assoc = 8;
            ic.freqGhz = config_.freqGhz;
            l1i_ = std::make_unique<ViptCache>(ic, latency_);
            if (isSeesawKind()) {
                // Keep code regions out of the D-side TFT.
                Tft *dtft = &seesawD_->tft();
                const Addr text_base = textBase_;
                tlb_->setOn2MBFill(
                    [dtft, text_base](Asid, Addr va_base) {
                        if (va_base < text_base)
                            dtft->markRegion(va_base);
                    });
            }
        }
    }

    // Steady-state warmup: prefill the LLC with the stream's hot
    // ranges so measurement does not start from an unrealistically
    // cold outer hierarchy (the paper's traces span 10B instructions).
    for (const auto &[begin, end] : stream_->hotRanges()) {
        for (Addr va = begin; va < end; va += 64) {
            if (auto t = os_->translate(asid_, va))
                outer_->prefill(t->translate(va));
        }
    }

    nextContextSwitch_ = config_.contextSwitchInterval;
    nextPromotion_ = config_.promotionInterval;
    nextSplinter_ = config_.splinterInterval;

    setupAuditor();
}

void
System::setupAuditor()
{
    if (config_.audit.mode == check::AuditMode::Off)
        return;
    if (!check::kAuditCompiledIn) {
        SEESAW_WARN("audit mode '",
                    check::auditModeName(config_.audit.mode),
                    "' requested but the audit layer is compiled out; "
                    "rebuild with -DSEESAW_AUDIT=ON");
        return;
    }

    auditor_ =
        std::make_unique<check::InvariantAuditor>(config_.audit);

    // Duplicate lines (one PA in two ways) are legal only under the
    // 4way-8way SEESAW policy, where a page mapped both base and super
    // can be installed twice (§IV-B1).
    const bool allow_dup =
        isSeesawKind() &&
        config_.policy == InsertionPolicy::FourWayEightWay;

    auditor_->registerCheck(
        "l1.tags", [this, allow_dup](check::AuditContext &ctx) {
            check::auditTagStoreSanity(l1_->tags(), ctx, allow_dup);
        });
    auditor_->registerCheck("tlb", [this](check::AuditContext &ctx) {
        check::auditTlbAgainstPageTable(*tlb_, os_->pageTable(), ctx);
    });
    auditor_->registerCheck(
        "mem.tcache", [this](check::AuditContext &ctx) {
            check::auditTranslationCacheAgainstPageTable(
                os_->pageTable(), ctx);
        });
    if (isSeesawKind()) {
        auditor_->registerCheck(
            "l1.partition", [this](check::AuditContext &ctx) {
                check::auditSeesawPlacement(*seesawL1(), ctx);
            });
        auditor_->registerCheck(
            "l1.tft", [this](check::AuditContext &ctx) {
                check::auditTftAgainstPageTable(seesawL1()->tft(),
                                                os_->pageTable(),
                                                asid_, ctx);
            });
    }
    if (l1i_) {
        auditor_->registerCheck(
            "l1i.tags", [this, allow_dup](check::AuditContext &ctx) {
                check::auditTagStoreSanity(l1i_->tags(), ctx,
                                           allow_dup);
            });
        if (SeesawCache *icache = seesawI_) {
            auditor_->registerCheck(
                "l1i.partition", [icache](check::AuditContext &ctx) {
                    check::auditSeesawPlacement(*icache, ctx);
                });
            auditor_->registerCheck(
                "l1i.tft", [this, icache](check::AuditContext &ctx) {
                    check::auditTftAgainstPageTable(icache->tft(),
                                                    os_->pageTable(),
                                                    asid_, ctx);
                });
        }
    }
}

System::~System() = default;

void
System::applyPromotion(const PromotionEvent &event)
{
    // The OS's TLB-invalidation instruction (§IV-C2): shoot down the
    // 512 stale base-page translations and sweep their lines from the
    // L1. The paper measures the whole operation at 150-200 cycles.
    for (unsigned i = 0; i < 512; ++i)
        tlb_->invalidatePage(event.asid, event.vaBase + i * 4096ULL);
    for (Addr old_pa : event.oldPaBases)
        l1_->sweepRegion(old_pa, 4096);
    cpu_->addStallCycles(config_.shootdownCycles);
}

void
System::applySplinter(const SplinterEvent &event)
{
    // invlpg on the old 2MB translation; the microarchitecture also
    // invalidates the matching TFT entry in parallel (§IV-C2).
    tlb_->invalidatePage(event.asid, event.vaBase);
    if (SeesawCache *cache = seesawL1())
        cache->tft().invalidateRegion(event.vaBase);
    cpu_->addStallCycles(config_.shootdownCycles);
}

void
System::osTick(std::uint64_t retired)
{
    if (config_.contextSwitchInterval &&
        retired >= nextContextSwitch_) {
        nextContextSwitch_ += config_.contextSwitchInterval;
        // The TFT carries no ASID tags; context switches flush it.
        if (SeesawCache *cache = seesawL1())
            cache->tft().flush();
    }

    if (config_.promotionInterval && retired >= nextPromotion_) {
        nextPromotion_ += config_.promotionInterval;
        for (const auto &event : os_->runPromotionPass(asid_, 2))
            applyPromotion(event);
    }

    if (config_.splinterInterval && retired >= nextSplinter_) {
        nextSplinter_ += config_.splinterInterval;
        const auto supers = os_->superpageVas(asid_);
        if (!supers.empty()) {
            const Addr va =
                supers[eventRng_.nextBounded(supers.size())];
            if (auto event = os_->splinter(asid_, va))
                applySplinter(*event);
        }
    }
}

void
System::doInstructionFetches(std::uint64_t instructions)
{
    if (!l1i_)
        return;
    // 16-byte fetch groups: one 64B line fetch per ~4 instructions.
    fetchCarry_ += static_cast<double>(instructions) / 4.0;
    auto fetches = static_cast<std::uint64_t>(fetchCarry_);
    fetchCarry_ -= static_cast<double>(fetches);

    while (fetches-- > 0) {
        const Addr va = code_->nextFetchLine();

        int tft_probe = -1;
        if (seesawI_)
            tft_probe = seesawI_->tft().lookup(va) ? 1 : 0;

        energy_->addL1TlbLookup();
        const TlbLookupResult tr = tlb_->lookup(asid_, va);
        if (!tr.l1Hit)
            energy_->addL2TlbLookup();
        if (tr.walked)
            energy_->addPageWalk();
        SEESAW_ASSERT(!tr.fault, "text segment must be premapped");

        const Addr pa = tr.translation.translate(va);
        L1Access req{va, pa, tr.translation.size, AccessType::Read,
                     tft_probe};
        const L1AccessResult res =
            seesawI_ ? seesawI_->access(req) : l1i_->access(req);
        if (seesawI_)
            energy_->addTftLookup();
        energy_->addL1Lookup(32 * 1024, 8, res.waysRead, false);

        if (!res.hit) {
            const OuterAccessResult outer =
                outer_->access(pa, AccessType::Read);
            energy_->addL2Access();
            if (outer.llcAccessed)
                energy_->addLlcAccess();
            if (outer.dramAccessed)
                energy_->addDramAccess();
            energy_->addLineInstall(res.installWays);
            // Front-end refill: the decode queue hides part of it.
            cpu_->addStallCycles(
                static_cast<Cycles>(outer.cycles * 0.4));
        }
        if (tr.penaltyCycles)
            cpu_->addStallCycles(tr.penaltyCycles / 2);
    }
}

void
System::doMemoryAccess(const MemRef &ref)
{
    // 0. Probe the TFT with its pre-TLB state: hardware reads the TFT
    //    and the L1 TLBs in parallel, and a 2MB TLB hit may refresh
    //    the very entry being probed — the refresh must not be
    //    visible to this access.
    int tft_probe = -1;
    if (SeesawCache *cache = seesawL1())
        tft_probe = cache->tft().lookup(ref.va) ? 1 : 0;

    // 1. Translate (the L1 TLB probe runs in parallel with L1 set
    //    selection; only L2-TLB latency and walks are exposed).
    energy_->addL1TlbLookup();
    TlbLookupResult tr = tlb_->lookup(asid_, ref.va);
    if (!tr.l1Hit)
        energy_->addL2TlbLookup();
    if (tr.walked)
        energy_->addPageWalk();
    if (tr.fault) {
        // Demand-page and retry. Synthetic footprints are premapped so
        // this is rare; trace replay relies on it. The whole 2MB chunk
        // is populated so THP can back it (Linux fault-around).
        ++pageFaults_;
        os_->mapAnonymous(asid_, alignDown(ref.va, 2 * 1024 * 1024),
                          2 * 1024 * 1024,
                          workload_.thpEligibleFraction);
        cpu_->addStallCycles(2000);
        tr = tlb_->lookup(asid_, ref.va);
        SEESAW_ASSERT(!tr.fault, "fault persists after demand paging");
    }

    const Addr pa = tr.translation.translate(ref.va);
    const PageSize page_size = tr.translation.size;

    // 2. L1 access (direct call into the final SeesawCache class when
    // the design is SEESAW; virtual dispatch otherwise).
    L1Access req{ref.va, pa, page_size, ref.type, tft_probe};
    const L1AccessResult res =
        seesawD_ ? seesawD_->access(req) : l1_->access(req);

    if (seesawD_)
        energy_->addTftLookup();
    if (res.wpUsed)
        energy_->addWayPredictorLookup();
    energy_->addL1Lookup(l1SizeBytes_, l1Assoc_, res.waysRead,
                         /*coherent=*/false);
    probes_->noteResident(pa);

    // 3. Miss handling in the outer hierarchy.
    unsigned miss_penalty = 0;
    if (!res.hit) {
        const OuterAccessResult outer = outer_->access(pa, ref.type);
        miss_penalty = outer.cycles;
        energy_->addL2Access();
        if (outer.llcAccessed)
            energy_->addLlcAccess();
        if (outer.dramAccessed)
            energy_->addDramAccess();
        energy_->addLineInstall(res.installWays);
        if (res.eviction.valid && res.eviction.dirty) {
            outer_->writeback(res.eviction.lineAddr * l1LineBytes_);
            energy_->addL2Access();
        }
    }

    // 4. Core timing.
    MemTiming timing;
    timing.hit = res.hit;
    timing.missPenalty = miss_penalty;
    timing.lateDiscovery = res.lateDiscovery || !res.hit;
    if (config_.coreKind == CoreKind::InOrder) {
        // In-order pipelines have no speculative wakeup: data is
        // consumed whenever it arrives, so the L1's actual latency is
        // the exposed latency (this is why SEESAW helps in-order cores
        // more, Fig 9).
        timing.lookupCycles = res.latencyCycles;
        timing.assumedCycles = res.latencyCycles;
    } else {
        // The out-of-order scheduler speculatively wakes dependents at
        // an assumed latency (§IV-B3): SEESAW assumes the fast hit
        // unless the superpage-TLB occupancy counter says superpages
        // are scarce; other designs assume their base hit time.
        unsigned assumed = l1_->baseHitCycles();
        if (isSeesawKind()) {
            const bool assume_fast =
                !config_.schedulerCounterPolicy ||
                tlb_->superpagesAmple();
            assumed = assume_fast ? l1_->fastHitCycles()
                                  : l1_->baseHitCycles();
        } else if (config_.l1Kind == L1Kind::Sipt) {
            // SIPT is speculation-first by construction: the scheduler
            // always assumes the speculative index was right and
            // replays otherwise.
            assumed = l1_->fastHitCycles();
        }
        // A hit that returns earlier than the scheduled wakeup cannot
        // retire dependents early: the effective latency is the
        // assumed one. A later return forces a squash (charged by the
        // core model).
        timing.lookupCycles = std::max(res.latencyCycles, assumed);
        timing.assumedCycles = assumed;
    }
    cpu_->retireMemory(timing);

    // 5. TLB miss penalties serialise before the tag check only beyond
    //    the L1 TLB (VIPT hides the L1 probe).
    if (tr.penaltyCycles)
        cpu_->addStallCycles(tr.penaltyCycles);
}

MemRef
System::nextRef()
{
    if (!trace_) {
        return stream_->next();
    }
    if (auto ref = trace_->next())
        return *ref;
    // Loop the trace when it is shorter than the budget.
    trace_ = std::make_unique<TraceReader>(config_.tracePath);
    auto ref = trace_->next();
    SEESAW_ASSERT(ref, "empty trace file: ", config_.tracePath);
    return *ref;
}

void
System::runLoop(std::uint64_t budget)
{
    std::uint64_t retired = 0;
    while (retired < budget) {
        const MemRef raw = nextRef();
        MemRef ref = raw;
        // Clamp the gap so we never badly overshoot the budget.
        const std::uint64_t room = budget - retired;
        if (ref.gap + 1ULL > room)
            ref.gap = static_cast<std::uint32_t>(room > 0 ? room - 1
                                                          : 0);
        cpu_->retireNonMemory(ref.gap);
        doMemoryAccess(ref);
        doInstructionFetches(ref.gap + 1);
        retired += ref.gap + 1;
        probes_->tick(ref.gap + 1);
        osTick(retiredBase_ + retired);
        if constexpr (check::kAuditCompiledIn) {
            if (auditor_)
                auditor_->onEvent(ref.gap + 1, cpu_->cycles());
        }
    }
    retiredBase_ += retired;
}

void
System::resetMeasurement()
{
    cpu_->resetCounters();
    energy_->reset();
    l1_->stats().resetAll();
    if (l1i_)
        l1i_->stats().resetAll();
    outer_->stats().resetAll();
    probes_->stats().resetAll();
    if (SeesawCache *cache = seesawL1())
        cache->tft().stats().resetAll();
    pageFaults_ = 0;
}

RunResult
System::run()
{
    if (config_.warmupInstructions > 0) {
        runLoop(config_.warmupInstructions);
        resetMeasurement();
    }
    runLoop(config_.instructions);
    if constexpr (check::kAuditCompiledIn) {
        if (auditor_)
            auditor_->onEndOfRun(cpu_->cycles());
    }

    // Static energy over the whole run: L1 leakage plus the outer
    // hierarchy's background power (this is where faster runtime
    // becomes hierarchy-energy savings).
    energy_->addL1Leakage(config_.l1SizeBytes, cpu_->cycles(),
                          config_.freqGhz);
    if (l1i_)
        energy_->addL1Leakage(32 * 1024, cpu_->cycles(),
                              config_.freqGhz);
    energy_->addBackground(cpu_->cycles(), config_.freqGhz);

    // --- Collect results.
    RunResult r;
    r.workload = workload_.name;
    r.instructions = cpu_->instructions();
    r.cycles = cpu_->cycles();
    r.ipc = cpu_->ipc();
    r.runtimeNs = static_cast<double>(r.cycles) / config_.freqGhz;

    const StatGroup &cs = l1_->stats();
    r.l1Accesses = static_cast<std::uint64_t>(cs.get("accesses"));
    r.l1Hits = static_cast<std::uint64_t>(cs.get("hits"));
    r.l1Misses = static_cast<std::uint64_t>(cs.get("misses"));
    r.l1Mpki = r.instructions
                   ? 1000.0 * static_cast<double>(r.l1Misses) /
                         static_cast<double>(r.instructions)
                   : 0.0;
    r.superpageRefs =
        static_cast<std::uint64_t>(cs.get("superpage_refs"));
    r.superpageRefsTftMiss =
        static_cast<std::uint64_t>(cs.get("superpage_refs_tft_miss"));
    r.superpageRefsTftMissL1Hit = static_cast<std::uint64_t>(
        cs.get("superpage_refs_tft_miss_l1_hit"));
    r.superpageRefsTftMissL1Miss = static_cast<std::uint64_t>(
        cs.get("superpage_refs_tft_miss_l1_miss"));
    r.superpageRefFraction =
        r.l1Accesses ? static_cast<double>(r.superpageRefs) /
                           static_cast<double>(r.l1Accesses)
                     : 0.0;

    const StatGroup &os_stats = outer_->stats();
    r.l2Accesses =
        static_cast<std::uint64_t>(os_stats.get("l2_accesses"));
    r.l2Hits = static_cast<std::uint64_t>(os_stats.get("l2_hits"));
    r.llcAccesses =
        static_cast<std::uint64_t>(os_stats.get("llc_accesses"));
    r.llcHits = static_cast<std::uint64_t>(os_stats.get("llc_hits"));
    r.dramAccesses =
        static_cast<std::uint64_t>(os_stats.get("dram_accesses"));

    if (SeesawCache *cache = seesawL1()) {
        r.tftLookups = static_cast<std::uint64_t>(
            cache->tft().stats().get("lookups"));
        r.tftHits = static_cast<std::uint64_t>(
            cache->tft().stats().get("hits"));
        r.fastHits = r.tftHits;
        if (const MruWayPredictor *wp = cache->wayPredictor())
            r.wpAccuracy = wp->accuracy();
    } else if (auto *vipt = dynamic_cast<ViptCache *>(l1_.get())) {
        if (const MruWayPredictor *wp = vipt->wayPredictor())
            r.wpAccuracy = wp->accuracy();
    }

    r.superpageCoverage = os_->superpageCoverage(asid_);

    r.energyTotalNj = energy_->totalNj();
    r.l1CpuDynamicNj = energy_->l1CpuDynamicNj();
    r.l1CoherenceDynamicNj = energy_->l1CoherenceDynamicNj();
    r.l1LeakageNj = energy_->l1LeakageNj();
    r.outerNj = energy_->outerHierarchyNj();
    r.translationNj = energy_->translationNj();

    r.squashes = cpu_->squashes();
    r.probes = probes_->probes();
    r.probeHits = static_cast<std::uint64_t>(
        probes_->stats().get("probe_hits"));

    if (l1i_) {
        r.l1iAccesses = static_cast<std::uint64_t>(
            l1i_->stats().get("accesses"));
        r.l1iMisses = static_cast<std::uint64_t>(
            l1i_->stats().get("misses"));
    }

    r.promotions = os_->promotions();
    r.splinters = os_->splinters();
    r.pageFaults = pageFaults_;
    return r;
}

} // namespace seesaw
