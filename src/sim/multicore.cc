#include "sim/multicore.hh"

#include <algorithm>
#include <cmath>

#include "check/cache_audits.hh"
#include "check/coherence_audits.hh"
#include "check/invariant_auditor.hh"
#include "check/tlb_audits.hh"
#include "common/logging.hh"

namespace seesaw {

namespace {

unsigned
toCycles(double ns, double freq_ghz)
{
    return static_cast<unsigned>(std::ceil(ns * freq_ghz - 1e-9));
}

} // namespace

MultiCoreSystem::MultiCoreSystem(const MultiCoreConfig &config,
                                 const WorkloadSpec &workload)
    : config_(config), workload_(workload),
      latency_(TechNode::Intel22), directory_(config.cores)
{
    SEESAW_ASSERT(config_.cores >= 1 && config_.cores <= 64,
                  "1-64 cores supported");
    energy_ = std::make_unique<EnergyModel>(latency_.sram());

    OsParams os_params = config_.os;
    os_params.seed ^= config_.seed;
    os_ = std::make_unique<OsMemoryManager>(os_params);
    memhog_ = std::make_unique<Memhog>(*os_, config_.memhog);
    memhog_->consume(config_.memhogFraction);

    asid_ = os_->createProcess();
    heapBase_ = Addr{1} << 40;
    os_->mapAnonymous(asid_, heapBase_, workload_.footprintBytes,
                      workload_.thpEligibleFraction);

    llc_ = std::make_unique<SetAssocCache>(config_.outer.llcSizeBytes,
                                           config_.outer.llcAssoc);
    l2Cycles_ = toCycles(config_.outer.l2LatencyNs, config_.freqGhz);
    llcCycles_ = toCycles(config_.outer.llcLatencyNs, config_.freqGhz);
    dramCycles_ =
        toCycles(config_.outer.dramLatencyNs, config_.freqGhz);

    for (unsigned c = 0; c < config_.cores; ++c) {
        // L1 per design under test.
        if (isSeesaw()) {
            SeesawConfig sc;
            sc.sizeBytes = config_.l1SizeBytes;
            sc.assoc = config_.l1Assoc;
            sc.partitionWays = config_.partitionWays;
            sc.freqGhz = config_.freqGhz;
            sc.policy = config_.policy;
            sc.tftEntries = config_.tftEntries;
            l1s_.push_back(
                std::make_unique<SeesawCache>(sc, latency_));
        } else {
            BaselineL1Config bc;
            bc.sizeBytes = config_.l1SizeBytes;
            bc.assoc = config_.l1Assoc;
            bc.freqGhz = config_.freqGhz;
            l1s_.push_back(std::make_unique<ViptCache>(bc, latency_));
        }

        l2s_.push_back(std::make_unique<SetAssocCache>(
            config_.outer.l2SizeBytes, config_.outer.l2Assoc));

        tlbs_.push_back(std::make_unique<TlbHierarchy>(
            TlbHierarchyParams::sandybridge(), os_->pageTable()));
        if (isSeesaw()) {
            Tft *tft =
                &static_cast<SeesawCache *>(l1s_.back().get())->tft();
            tlbs_.back()->setOn2MBFill(
                [tft](Asid, Addr va) { tft->markRegion(va); });
        }

        cpus_.push_back(std::make_unique<OoOCore>());

        // One thread per core: shared heap, private hot regions, and
        // spec.sharedFraction of hot references hitting the common
        // shared region — real sharing, per-thread locality.
        streams_.push_back(std::make_unique<ReferenceStream>(
            workload_, heapBase_, config_.seed ^ (0x7ead0ULL + c),
            c));
    }

    // Steady-state LLC prewarm (shared hot ranges).
    for (const auto &[begin, end] : streams_[0]->hotRanges()) {
        for (Addr va = begin; va < end; va += 64) {
            if (auto t = os_->translate(asid_, va)) {
                const Addr pa = t->translate(va);
                if (!llc_->peek(pa).hit) {
                    llc_->insert(pa,
                                 SetAssocCache::InsertScope::FullSet,
                                 CoherenceState::Exclusive,
                                 PageSize::Base4KB);
                }
            }
        }
    }

    setupAuditor();
}

void
MultiCoreSystem::setupAuditor()
{
    if (config_.audit.mode == check::AuditMode::Off)
        return;
    if (!check::kAuditCompiledIn) {
        SEESAW_WARN("audit mode '",
                    check::auditModeName(config_.audit.mode),
                    "' requested but the audit layer is compiled out; "
                    "rebuild with -DSEESAW_AUDIT=ON");
        return;
    }

    auditor_ =
        std::make_unique<check::InvariantAuditor>(config_.audit);

    auditor_->registerCheck(
        "directory", [this](check::AuditContext &ctx) {
            std::vector<const L1Cache *> l1s;
            l1s.reserve(l1s_.size());
            for (const auto &l1 : l1s_)
                l1s.push_back(l1.get());
            check::auditDirectoryConsistency(directory_, l1s, ctx);
        });
    const bool allow_dup =
        isSeesaw() && config_.policy == InsertionPolicy::FourWayEightWay;
    auditor_->registerCheck(
        "l1.tags", [this, allow_dup](check::AuditContext &ctx) {
            for (unsigned c = 0; c < config_.cores; ++c) {
                ctx.core = static_cast<int>(c);
                check::auditTagStoreSanity(l1s_[c]->tags(), ctx,
                                           allow_dup);
            }
        });
    auditor_->registerCheck(
        "outer.tags", [this](check::AuditContext &ctx) {
            for (unsigned c = 0; c < config_.cores; ++c) {
                ctx.core = static_cast<int>(c);
                check::auditTagStoreSanity(*l2s_[c], ctx);
            }
            ctx.core = -1;
            check::auditTagStoreSanity(*llc_, ctx);
        });
    auditor_->registerCheck("tlb", [this](check::AuditContext &ctx) {
        for (unsigned c = 0; c < config_.cores; ++c) {
            ctx.core = static_cast<int>(c);
            check::auditTlbAgainstPageTable(*tlbs_[c],
                                            os_->pageTable(), ctx);
        }
    });
    if (isSeesaw()) {
        auditor_->registerCheck(
            "l1.partition", [this](check::AuditContext &ctx) {
                for (unsigned c = 0; c < config_.cores; ++c) {
                    ctx.core = static_cast<int>(c);
                    check::auditSeesawPlacement(
                        *static_cast<SeesawCache *>(l1s_[c].get()),
                        ctx);
                }
            });
        auditor_->registerCheck(
            "l1.tft", [this](check::AuditContext &ctx) {
                for (unsigned c = 0; c < config_.cores; ++c) {
                    ctx.core = static_cast<int>(c);
                    check::auditTftAgainstPageTable(
                        static_cast<SeesawCache *>(l1s_[c].get())
                            ->tft(),
                        os_->pageTable(), asid_, ctx);
                }
            });
    }
}

MultiCoreSystem::~MultiCoreSystem() = default;

unsigned
MultiCoreSystem::sendProbes(CoreId requester,
                            const ExactDirectory::ProbeList &probes,
                            Addr pa)
{
    if (probes.targets.empty())
        return 0;

    for (CoreId target : probes.targets) {
        const L1ProbeResult res =
            l1s_[target]->probe(pa, probes.invalidating);
        ++probes_;
        probeHits_ += res.hit ? 1 : 0;
        energy_->addL1Lookup(config_.l1SizeBytes, config_.l1Assoc,
                             res.waysRead, /*coherent=*/true);
        if (probes.invalidating && res.hit) {
            // The private L2 copy goes too (inclusive-ish fiction).
            l2s_[target]->invalidate(pa);
        }
    }
    (void)requester;
    // Directory indirection + probe round trip.
    return llcCycles_;
}

unsigned
MultiCoreSystem::outerAccess(CoreId core, Addr pa, AccessType type,
                             bool owner_supplied)
{
    const auto fill_state = type == AccessType::Write
                                ? CoherenceState::Modified
                                : CoherenceState::Exclusive;
    unsigned cycles = l2Cycles_;
    energy_->addL2Access();
    if (owner_supplied) {
        // Cache-to-cache transfer: the dirty owner forwards the line;
        // no LLC/DRAM data access is needed.
        return cycles + llcCycles_;
    }
    if (l2s_[core]->lookup(pa).hit)
        return cycles;

    cycles += llcCycles_;
    energy_->addLlcAccess();
    if (!llc_->lookup(pa).hit) {
        cycles += dramCycles_;
        energy_->addDramAccess();
        llc_->insert(pa, SetAssocCache::InsertScope::FullSet,
                     fill_state, PageSize::Base4KB);
    }
    l2s_[core]->insert(pa, SetAssocCache::InsertScope::FullSet,
                       fill_state, PageSize::Base4KB);
    return cycles;
}

std::uint64_t
MultiCoreSystem::step(CoreId core)
{
    const MemRef ref = streams_[core]->next();
    cpus_[core]->retireNonMemory(ref.gap);

    // TFT probe with pre-TLB state, then translation.
    int tft_probe = -1;
    if (isSeesaw()) {
        tft_probe = static_cast<SeesawCache *>(l1s_[core].get())
                            ->tft()
                            .lookup(ref.va)
                        ? 1
                        : 0;
    }
    energy_->addL1TlbLookup();
    const TlbLookupResult tr = tlbs_[core]->lookup(asid_, ref.va);
    if (!tr.l1Hit)
        energy_->addL2TlbLookup();
    if (tr.walked)
        energy_->addPageWalk();
    SEESAW_ASSERT(!tr.fault, "multi-core heap is premapped");

    const Addr pa = tr.translation.translate(ref.va);
    ++totalRefs_;
    superRefs_ += isSuperpage(tr.translation.size) ? 1 : 0;

    // Coherence: writes invalidate remote copies BEFORE the local
    // access; read misses may be supplied by a dirty remote owner.
    unsigned coherence_cycles = 0;
    bool owner_supplied = false;
    const bool was_held = directory_.holds(core, pa);
    if (ref.type == AccessType::Write) {
        const auto probes = directory_.onWrite(core, pa);
        owner_supplied = probes.ownerSupplies;
        coherence_cycles += sendProbes(core, probes, pa);
        ownerSupplies_ += probes.ownerSupplies ? 1 : 0;
    } else if (!was_held) {
        const auto probes = directory_.onReadMiss(core, pa);
        owner_supplied = probes.ownerSupplies;
        coherence_cycles += sendProbes(core, probes, pa);
        ownerSupplies_ += probes.ownerSupplies ? 1 : 0;
    }

    // Local L1 access.
    L1Access req{ref.va, pa, tr.translation.size, ref.type, tft_probe};
    const L1AccessResult res = l1s_[core]->access(req);
    if (isSeesaw())
        energy_->addTftLookup();
    energy_->addL1Lookup(config_.l1SizeBytes, config_.l1Assoc,
                         res.waysRead, /*coherent=*/false);

    unsigned miss_penalty = coherence_cycles;
    if (!res.hit) {
        miss_penalty +=
            outerAccess(core, pa, ref.type, owner_supplied);
        energy_->addLineInstall(res.installWays);
        directory_.recordFill(core, pa,
                              ref.type == AccessType::Write);
        if (ref.type != AccessType::Write &&
            directory_.sharerCount(pa) > 1) {
            // The L1 installed the read fill Exclusive, but other
            // copies exist; MOESI grants E only to the sole copy.
            if (CacheLine *line = l1s_[core]->tags().findLine(pa))
                line->state = CoherenceState::Shared;
        }
        if (res.eviction.valid) {
            directory_.recordEviction(core,
                                      res.eviction.lineAddr << 6);
            if (res.eviction.dirty)
                energy_->addL2Access();
        }
    } else if (ref.type == AccessType::Write && !was_held) {
        // Rare alias: hit without a directory record (e.g., filled as
        // part of warmup) — re-register.
        directory_.recordFill(core, pa, true);
    } else if (ref.type == AccessType::Write) {
        directory_.recordFill(core, pa, true); // refresh ownership
    }

    // Core timing (OoO scheduler, §IV-B3 counter policy).
    unsigned assumed = l1s_[core]->baseHitCycles();
    if (isSeesaw() && tlbs_[core]->superpagesAmple())
        assumed = l1s_[core]->fastHitCycles();

    MemTiming timing;
    timing.hit = res.hit;
    timing.missPenalty = miss_penalty;
    timing.lateDiscovery = res.lateDiscovery || !res.hit;
    timing.lookupCycles = std::max(res.latencyCycles, assumed);
    timing.assumedCycles = assumed;
    cpus_[core]->retireMemory(timing);
    if (tr.penaltyCycles)
        cpus_[core]->addStallCycles(tr.penaltyCycles);

    if constexpr (check::kAuditCompiledIn) {
        if (auditor_) {
            // Directory and caches are mutually consistent again here:
            // audit after every completed transition in Paranoid mode.
            if (ref.type == AccessType::Write || !res.hit)
                auditor_->onCoherenceTransition(cpus_[core]->cycles());
            auditor_->onEvent(ref.gap + 1, cpus_[core]->cycles());
        }
    }

    return ref.gap + 1;
}

void
MultiCoreSystem::resetMeasurement()
{
    for (auto &cpu : cpus_)
        cpu->resetCounters();
    for (auto &l1 : l1s_)
        l1->stats().resetAll();
    energy_->reset();
    probes_ = 0;
    probeHits_ = 0;
    ownerSupplies_ = 0;
    superRefs_ = 0;
    totalRefs_ = 0;
}

MultiRunResult
MultiCoreSystem::run()
{
    auto run_phase = [&](std::uint64_t per_core_budget) {
        std::vector<std::uint64_t> retired(config_.cores, 0);
        bool progress = true;
        while (progress) {
            progress = false;
            for (CoreId c = 0; c < config_.cores; ++c) {
                if (retired[c] < per_core_budget) {
                    retired[c] += step(c);
                    progress = true;
                }
            }
        }
    };

    if (config_.warmupInstructionsPerCore > 0) {
        run_phase(config_.warmupInstructionsPerCore);
        resetMeasurement();
    }
    run_phase(config_.instructionsPerCore);

    if constexpr (check::kAuditCompiledIn) {
        if (auditor_) {
            Cycles now = 0;
            for (const auto &cpu : cpus_)
                now = std::max(now, cpu->cycles());
            auditor_->onEndOfRun(now);
        }
    }

    MultiRunResult r;
    r.cores = config_.cores;
    for (unsigned c = 0; c < config_.cores; ++c) {
        r.instructions += cpus_[c]->instructions();
        r.cycles = std::max(r.cycles, cpus_[c]->cycles());
        r.l1Accesses += static_cast<std::uint64_t>(
            l1s_[c]->stats().get("accesses"));
        r.l1Hits += static_cast<std::uint64_t>(
            l1s_[c]->stats().get("hits"));
    }
    // Static energy for every L1 over the run.
    for (unsigned c = 0; c < config_.cores; ++c) {
        energy_->addL1Leakage(config_.l1SizeBytes, r.cycles,
                              config_.freqGhz);
    }
    energy_->addBackground(r.cycles, config_.freqGhz);

    r.aggregateIpc =
        r.cycles ? static_cast<double>(r.instructions) / r.cycles
                 : 0.0;
    r.probes = probes_;
    r.probeHits = probeHits_;
    r.ownerSupplies = ownerSupplies_;
    r.energyTotalNj = energy_->totalNj();
    r.l1CpuDynamicNj = energy_->l1CpuDynamicNj();
    r.l1CoherenceDynamicNj = energy_->l1CoherenceDynamicNj();
    r.outerNj = energy_->outerHierarchyNj();
    r.superpageRefFraction =
        totalRefs_ ? static_cast<double>(superRefs_) / totalRefs_
                   : 0.0;
    r.superpageCoverage = os_->superpageCoverage(asid_);
    return r;
}

bool
MultiCoreSystem::checkDirectoryInvariant() const
{
    // One-shot run of the shared directory-consistency audit with a
    // collecting handler (the full bidirectional MOESI cross-check).
    check::InvariantAuditor auditor;
    std::uint64_t found = 0;
    auditor.setViolationHandler(
        [&found](const check::Violation &) { ++found; });

    std::vector<const L1Cache *> l1s;
    l1s.reserve(l1s_.size());
    for (const auto &l1 : l1s_)
        l1s.push_back(l1.get());
    auditor.registerCheck(
        "directory", [&](check::AuditContext &ctx) {
            check::auditDirectoryConsistency(directory_, l1s, ctx);
        });
    auditor.runAll(0);
    return found == 0;
}

RunResult
asRunResult(const MultiRunResult &r, const std::string &workload)
{
    RunResult out;
    out.workload = workload;
    out.instructions = r.instructions;
    out.cycles = r.cycles;
    out.ipc = r.aggregateIpc;
    out.l1Accesses = r.l1Accesses;
    out.l1Hits = r.l1Hits;
    out.l1Misses = r.l1Accesses - r.l1Hits;
    out.probes = r.probes;
    out.probeHits = r.probeHits;
    out.ownerSupplies = r.ownerSupplies;
    out.energyTotalNj = r.energyTotalNj;
    out.l1CpuDynamicNj = r.l1CpuDynamicNj;
    out.l1CoherenceDynamicNj = r.l1CoherenceDynamicNj;
    out.outerNj = r.outerNj;
    out.superpageRefFraction = r.superpageRefFraction;
    out.superpageCoverage = r.superpageCoverage;
    return out;
}

} // namespace seesaw
