#include "sim/experiment.hh"

#include <algorithm>
#include <cstdlib>

#include "common/logging.hh"

namespace seesaw {

RunResult
simulate(const WorkloadSpec &workload, const SystemConfig &config)
{
    SimEngine system(config, workload);
    return system.run();
}

double
runtimeImprovementPercent(const RunResult &baseline,
                          const RunResult &variant)
{
    if (baseline.cycles == 0)
        return 0.0;
    return 100.0 *
           (static_cast<double>(baseline.cycles) -
            static_cast<double>(variant.cycles)) /
           static_cast<double>(baseline.cycles);
}

double
energySavedPercent(const RunResult &baseline, const RunResult &variant)
{
    if (baseline.energyTotalNj <= 0.0)
        return 0.0;
    return 100.0 * (baseline.energyTotalNj - variant.energyTotalNj) /
           baseline.energyTotalNj;
}

Summary
summarize(const std::vector<double> &values)
{
    SEESAW_ASSERT(!values.empty(), "summarize needs data");
    Summary s;
    s.min = s.max = values.front();
    double sum = 0.0;
    for (double v : values) {
        sum += v;
        s.min = std::min(s.min, v);
        s.max = std::max(s.max, v);
    }
    s.avg = sum / static_cast<double>(values.size());
    return s;
}

namespace {

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    char *end = nullptr;
    const auto parsed = std::strtoull(value, &end, 10);
    if (end == value) {
        SEESAW_WARN("ignoring unparsable ", name, "=", value);
        return fallback;
    }
    return parsed;
}

} // namespace

std::uint64_t
experimentInstructions(std::uint64_t fallback)
{
    return envU64("SEESAW_INSTRUCTIONS", fallback);
}

std::uint64_t
experimentMemBytes(std::uint64_t fallback)
{
    return envU64("SEESAW_MEM_BYTES", fallback);
}

DesignComparison
compareBaselineVsSeesaw(const WorkloadSpec &workload,
                        SystemConfig base_config)
{
    DesignComparison cmp;
    base_config.l1Kind = L1Kind::ViptBaseline;
    cmp.baseline = simulate(workload, base_config);
    base_config.l1Kind = L1Kind::Seesaw;
    cmp.seesaw = simulate(workload, base_config);
    cmp.runtimeImprovementPct =
        runtimeImprovementPercent(cmp.baseline, cmp.seesaw);
    cmp.energySavedPct = energySavedPercent(cmp.baseline, cmp.seesaw);
    return cmp;
}

} // namespace seesaw
