/**
 * @file
 * One-pass multi-configuration simulation: a single trace pass drives
 * N per-config substrates (L1/L2 tag stores, TLB groups, TFT, way
 * predictor, energy and stat groups) over one config-invariant front
 * end (workload streams, page table, translation cache, OS memory
 * manager, per-core RNGs). OS events — promotion, splinter, unmap,
 * context switch — broadcast to every substrate, and each substrate's
 * state sequence is bit-identical to running its configuration alone
 * through SimEngine (the DEW structure, arXiv 1506.03181, applied to
 * the SEESAW design space).
 *
 * What is shared and what forks:
 *  - Shared, exactly once per pass: the OS memory manager (buddy
 *    allocator, page tables, translation cache, khugepaged), memhog
 *    fragmentation, the per-core reference/fetch streams, the OS-event
 *    RNG and schedule (keyed on retired instructions, which every
 *    substrate agrees on by construction), and one TLB hierarchy per
 *    *TLB group* — substrates whose configs imply identical TLB
 *    geometry share lookups; others get their own hierarchy.
 *  - Forked per substrate: L1D/L1I tag stores and TFTs, way
 *    predictors, private L2s + LLC, the coherence fabric, CPU timing,
 *    the energy model, and the invariant auditor (per-substrate audit
 *    contexts, so a desynced substrate is caught individually).
 *
 * Front-end compatibility (frontEndKey) is the contract: configs in
 * one pass must agree on every field that feeds the shared state.
 */

#ifndef SEESAW_SIM_MULTI_CONFIG_ENGINE_HH
#define SEESAW_SIM_MULTI_CONFIG_ENGINE_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/sim_engine.hh"

namespace seesaw {

/**
 * Drives N compatible SystemConfigs through one trace pass.
 * Construct with the configs (asserts pairwise front-end
 * compatibility), then run() once; results arrive in config order.
 */
class MultiConfigEngine
{
  public:
    MultiConfigEngine(std::vector<SystemConfig> configs,
                      const WorkloadSpec &workload);
    ~MultiConfigEngine();

    /** Execute the shared per-core instruction budget once; @return
     *  one RunResult per config, in constructor order. */
    std::vector<RunResult> run();

    /** Whether two configs can share one front end (and therefore one
     *  pass): every config-invariant field must match. */
    static bool compatibleFrontEnds(const SystemConfig &a,
                                    const SystemConfig &b);

    /** Canonical serialization of the config-invariant fields — the
     *  harness groups cells by (workload, this key). */
    static std::string frontEndKey(const SystemConfig &config);

    /** @name Component access (tests / advanced drivers). */
    /// @{
    unsigned substrates() const
    {
        return static_cast<unsigned>(substrates_.size());
    }
    const SystemConfig &config(unsigned substrate) const
    {
        return configs_[substrate];
    }
    CoreComplex &complex(unsigned substrate, unsigned core = 0)
    {
        return *substrates_[substrate].complexes[core];
    }
    /** The shared TLB hierarchy serving @p substrate on @p core. */
    TlbHierarchy &tlb(unsigned substrate, unsigned core = 0)
    {
        return complex(substrate, core).activeTlb();
    }
    check::InvariantAuditor *auditor(unsigned substrate)
    {
        return substrates_[substrate].auditor.get();
    }
    OsMemoryManager &os() { return *os_; }
    Asid asid() const { return asid_; }
    /// @}

    /**
     * Unmap [va_base, va_base+bytes) and broadcast the shootdown to
     * every substrate: invlpg on each shared TLB group, plus TFT
     * region invalidations in every SEESAW L1D/L1I. The run loop's
     * promotion/splinter events use the same broadcast structure; this
     * entry point is for OS-driven unmaps (and their tests).
     */
    void unmapBroadcast(Addr va_base, std::uint64_t bytes);

  private:
    /** Substrates sharing one TLB geometry share one hierarchy per
     *  core; the group's superpage hook broadcasts to every member. */
    struct TlbGroup
    {
        std::size_t exemplar = 0; //!< config index defining geometry
        std::vector<std::unique_ptr<TlbHierarchy>> tlbs; //!< per core
    };

    /** Everything that forks per configuration. */
    struct Substrate
    {
        const SystemConfig *config = nullptr;
        std::size_t tlbGroup = 0;
        std::unique_ptr<EnergyModel> energy;
        std::unique_ptr<SetAssocCache> sharedLlc;
        std::vector<std::unique_ptr<CoreComplex>> complexes;
        std::unique_ptr<CoherenceFabric> fabric;
        ExactDirectory *directory = nullptr;
        std::unique_ptr<check::InvariantAuditor> auditor;
    };

    /** The config-invariant per-core front end. */
    struct CoreFrontEnd
    {
        std::unique_ptr<ReferenceStream> stream;
        std::unique_ptr<TraceReader> trace; //!< replaces stream if set
        std::unique_ptr<CodeStream> code;   //!< modelInstructionCache
        double fetchCarry = 0.0;
        std::uint64_t retiredTotal = 0;
        std::uint64_t nextContextSwitch = 0;
    };

    MemRef nextRef(CoreFrontEnd &fe);
    std::uint64_t step(CoreId c, std::uint64_t room);
    void runLoop(std::uint64_t per_core_budget);
    void resetMeasurement();
    void osTick(CoreId c);
    void applyPromotion(const PromotionEvent &event);
    void applySplinter(const SplinterEvent &event);
    void setupAuditor(Substrate &sub);

    WorkloadSpec workload_;
    LatencyTable latency_;
    std::vector<SystemConfig> configs_;
    Rng eventRng_;

    std::unique_ptr<OsMemoryManager> os_;
    std::unique_ptr<Memhog> memhog_;
    Asid asid_ = 0;
    Addr heapBase_ = 0;
    Addr textBase_ = 0;

    std::vector<TlbGroup> groups_;
    std::vector<Substrate> substrates_;
    std::vector<CoreFrontEnd> cores_;

    std::uint64_t nextPromotion_ = 0;
    std::uint64_t nextSplinter_ = 0;

    /** @name Per-step scratch (sized once; the access loop is hot). */
    /// @{
    std::vector<int> dProbe_, iProbe_;
    std::vector<TlbLookupResult> trs_, itrs_;
    std::vector<char> transitions_;
    /// @}
};

} // namespace seesaw

#endif // SEESAW_SIM_MULTI_CONFIG_ENGINE_HH
