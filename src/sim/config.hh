/**
 * @file
 * Unified configuration and result types shared by every simulation:
 * one SystemConfig describes a system of N identical CoreComplexes
 * (core model, TLBs, TFT, L1D/L1I, private L2) over a coherence
 * fabric and one shared LLC; one RunResult carries the aggregate and
 * per-core statistics of a run. cores=1 is the paper's single-core
 * system; higher counts add exact coherence (sim/sim_engine.hh).
 */

#ifndef SEESAW_SIM_CONFIG_HH
#define SEESAW_SIM_CONFIG_HH

#include <string>
#include <vector>

#include "cache/next_level.hh"
#include "cache/prefetch/prefetch.hh"
#include "cache/replacement.hh"
#include "check/audit.hh"
#include "coherence/snoop_bus.hh"
#include "core/seesaw_cache.hh"
#include "cpu/cpu_model.hh"
#include "mem/memhog.hh"
#include "mem/os_memory_manager.hh"

namespace seesaw {

/** Which L1 design the system instantiates. */
enum class L1Kind : std::uint8_t
{
    ViptBaseline,       //!< traditional VIPT (the paper's baseline)
    Pipt,               //!< PIPT with free associativity (Fig 14)
    Seesaw,             //!< the paper's design
    ViptWayPredicted,   //!< baseline + MRU way predictor (Fig 15 "WP")
    SeesawWayPredicted, //!< combined WP+SEESAW (Fig 15)
    Sipt,               //!< speculatively indexed (related work, §VII)
};

/** Full system configuration. */
struct SystemConfig
{
    CoreKind coreKind = CoreKind::OutOfOrder;
    L1Kind l1Kind = L1Kind::Seesaw;

    std::uint64_t l1SizeBytes = 32 * 1024;
    unsigned l1Assoc = 8;
    unsigned partitionWays = 4;
    double freqGhz = 1.33;
    InsertionPolicy policy = InsertionPolicy::FourWay;
    unsigned tftEntries = 16;
    unsigned tftAssoc = 1; //!< 1 = the paper's direct-mapped TFT

    /** Use an ARM/SPARC-style fully-associative unified L1 TLB instead
     *  of the Intel-style split L1 TLBs (the default follows the core
     *  preset). */
    bool unifiedL1Tlb = false;
    unsigned unifiedL1TlbEntries = 64;

    /** PIPT alternative: serial TLB latency in cycles. */
    unsigned piptTlbCycles = 2;

    /** SIPT alternative: reduced associativity (sets grow instead). */
    unsigned siptAssoc = 2;

    /**
     * Victim-selection policy for every tag store (L1D/L1I, TFT, and
     * all TLB levels). Each structure decorrelates the Random seed
     * with its own salt, and per-core structures additionally fold the
     * core's derived seed in, so Random stays deterministic and
     * core-count-independent. The default (LRU, matching the paper's
     * Table II) is pinned bit-identical to the historical behaviour.
     */
    ReplacementParams replacement;

    /**
     * L1D prefetch engine (per core). PrefetchKind::None — the default
     * — is pinned bit-identical to a build without the engine.
     * Candidates that would cross out of the triggering access's page
     * are dropped as illegal (a SEESAW partition is named by the
     * page's translation, so a crossing prefetch would have to
     * re-translate and could land in a different partition).
     */
    PrefetchParams prefetch;

    OsParams os;
    MemhogParams memhog;
    double memhogFraction = 0.0;

    OuterHierarchyParams outer;

    /**
     * Number of CoreComplexes the engine drives (1-64). cores=1
     * reproduces the classic single-core system bit-for-bit and
     * models coherence as the paper's stochastic probe load; cores>1
     * runs one workload thread per core over a shared heap with exact
     * coherence over `fabric`.
     */
    unsigned cores = 1;

    /** Coherence fabric. At cores=1 this selects the synthetic probe
     *  stream's shape (directory-filtered vs snoopy broadcast; None
     *  disables probes); at cores>1 it selects the real fabric. */
    CoherenceKind fabric = CoherenceKind::Directory;

    /** Instruction budget, per core. */
    std::uint64_t instructions = 2'000'000;

    /** Instructions executed per core before measurement starts:
     *  warms caches, TLBs and the TFT, and amortises cold
     *  (first-touch) misses that the paper's 10-billion-instruction
     *  traces never see. */
    std::uint64_t warmupInstructions = 150'000;

    std::uint64_t seed = 1;

    /** §IV-B3: scheduler assumes the fast hit time only while the 2MB
     *  L1 TLB holds at least a quarter of its capacity. */
    bool schedulerCounterPolicy = true;

    /** Context-switch interval (TFT flush; no ASID tags, §IV-C3),
     *  per core. 0 disables. */
    std::uint64_t contextSwitchInterval = 1'000'000;

    /** khugepaged pass interval in instructions (0 disables). */
    std::uint64_t promotionInterval = 500'000;

    /** Splinter-event interval in instructions (0 disables). */
    std::uint64_t splinterInterval = 4'000'000;

    /** TLB-shootdown / sweep cost for promotion & splinter events. */
    unsigned shootdownCycles = 175;

    /**
     * Also model a 32KB 8-way L1 instruction cache (Table II) fed by a
     * synthetic fetch stream, applying SEESAW to it when l1Kind is a
     * SEESAW kind — the §V extension the paper flags as valuable for
     * cloud workloads with large instruction footprints.
     */
    bool modelInstructionCache = false;

    /** L1I design selection when modelInstructionCache is set. */
    enum class ICacheKind : std::uint8_t
    {
        FollowL1, //!< SEESAW iff l1Kind is a SEESAW kind (default)
        Vipt,     //!< force a baseline VIPT L1I
        Seesaw,   //!< force a SEESAW L1I
    };
    ICacheKind icacheKind = ICacheKind::FollowL1;

    /** THP eligibility of the text segment (2MB text mappings). */
    double codeThpEligibleFraction = 0.85;

    /**
     * Back the workload's heap with explicit 1GB superpages
     * (hugetlbfs-style) instead of THP 2MB pages — the §IV
     * generalisation. Falls back to THP for any tail the 1GB
     * allocator cannot satisfy.
     */
    bool useOneGbHeap = false;

    /**
     * Replay an externally captured binary trace (workload/trace.hh)
     * instead of the synthetic reference stream. Addresses are mapped
     * on demand (2MB chunks, THP-eligible per the workload spec); the
     * trace loops if shorter than the instruction budget.
     */
    std::string tracePath;

    /** Invariant-audit cadence (src/check). Modes other than Off need
     *  a build with -DSEESAW_AUDIT=ON; otherwise a warning is issued
     *  and no audits run. */
    check::AuditOptions audit;
};

/** Per-core slice of a run (populated for every core). */
struct PerCoreResult
{
    std::uint64_t instructions = 0;
    Cycles cycles = 0;
    double ipc = 0.0;
    std::uint64_t l1Accesses = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t tftHits = 0;
    std::uint64_t squashes = 0;
    std::uint64_t pageFaults = 0;

    bool operator==(const PerCoreResult &) const = default;
};

/** Everything a bench needs from one simulation. */
struct RunResult
{
    std::string workload;
    std::uint64_t instructions = 0;
    Cycles cycles = 0;
    double ipc = 0.0;
    double runtimeNs = 0.0;

    std::uint64_t l1Accesses = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l1Misses = 0;
    double l1Mpki = 0.0;
    std::uint64_t fastHits = 0; //!< completed at the fast latency

    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t llcAccesses = 0;
    std::uint64_t llcHits = 0;
    std::uint64_t dramAccesses = 0;

    std::uint64_t tftLookups = 0;
    std::uint64_t tftHits = 0;
    std::uint64_t superpageRefs = 0;
    std::uint64_t superpageRefsTftMiss = 0;
    std::uint64_t superpageRefsTftMissL1Hit = 0;
    std::uint64_t superpageRefsTftMissL1Miss = 0;

    double superpageCoverage = 0.0;    //!< footprint fraction (Fig 3)
    double superpageRefFraction = 0.0; //!< reference fraction (§V)

    double energyTotalNj = 0.0;
    double l1CpuDynamicNj = 0.0;
    double l1CoherenceDynamicNj = 0.0;
    double l1LeakageNj = 0.0;
    double outerNj = 0.0;
    double translationNj = 0.0;

    std::uint64_t l1iAccesses = 0;
    std::uint64_t l1iMisses = 0;

    std::uint64_t squashes = 0;

    /** @name Coherence. Synthetic probe load at cores=1; real fabric
     *  probes (each a lookup in an actual remote L1) at cores>1. */
    /// @{
    std::uint64_t probes = 0;
    std::uint64_t probeHits = 0;
    std::uint64_t probeInvalidations = 0;
    std::uint64_t ownerSupplies = 0; //!< cache-to-cache transfers
                                     //!< (multi-core runs only)
    /// @}
    double wpAccuracy = 0.0;

    std::uint64_t promotions = 0;
    std::uint64_t splinters = 0;
    std::uint64_t pageFaults = 0;

    /** @name L1D prefetch engine (zero when PrefetchKind::None). */
    /// @{
    std::uint64_t prefetchIssued = 0;
    std::uint64_t prefetchUseful = 0;  //!< demand hit on prefetched line
    std::uint64_t prefetchLate = 0;    //!< candidate already resident
    std::uint64_t prefetchIllegalCrossing = 0; //!< dropped: out of page
    /// @}

    /** Core count of the run, and one slice per core. */
    unsigned cores = 1;
    std::vector<PerCoreResult> perCore;

    /** Field-wise equality, so the harness can assert that parallel
     *  and serial campaign executions are bit-identical. */
    bool operator==(const RunResult &) const = default;
};

} // namespace seesaw

#endif // SEESAW_SIM_CONFIG_HH
