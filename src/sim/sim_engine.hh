/**
 * @file
 * The unified simulation engine: N CoreComplexes (sim/core_complex.hh)
 * over a shared OS memory manager, a shared LLC and a pluggable
 * coherence fabric (coherence/fabric.hh).
 *
 * cores=1 reproduces the original single-core System bit-for-bit —
 * same construction order, same RNG salts, same per-access sequence —
 * with coherence modelled as the paper's stochastic probe load.
 * cores>1 runs one workload thread per core over the shared heap with
 * exact coherence (directory or snoopy broadcast), which is where
 * SEESAW's cheap 4-way probes are measured rather than sampled.
 */

#ifndef SEESAW_SIM_SIM_ENGINE_HH
#define SEESAW_SIM_SIM_ENGINE_HH

#include <memory>
#include <vector>

#include "coherence/fabric.hh"
#include "sim/core_complex.hh"

namespace seesaw::check {
class InvariantAuditor;
} // namespace seesaw::check

namespace seesaw {

/**
 * Register the standard per-layer invariant checks for one simulated
 * system — a whole SimEngine, or a single substrate of a
 * MultiConfigEngine (sim/multi_config_engine.hh), which is why the
 * components arrive as explicit parameters rather than an engine.
 * The TLB check audits each complex's *active* hierarchy, so shared
 * multi-config TLB groups are covered per substrate.
 */
void registerSystemAudits(check::InvariantAuditor &auditor,
                          const SystemConfig &config,
                          std::vector<CoreComplex *> complexes,
                          SetAssocCache *shared_llc,
                          ExactDirectory *directory,
                          OsMemoryManager &os, Asid asid);

/**
 * Aggregate one system's per-core stats into a RunResult — the one
 * sanctioned place for string-keyed stat reads. Shared by SimEngine
 * and MultiConfigEngine (which calls it once per substrate).
 */
RunResult collectRunResults(const SystemConfig &config,
                            const WorkloadSpec &workload,
                            const std::vector<CoreComplex *> &complexes,
                            EnergyModel &energy,
                            CoherenceFabric *fabric,
                            OsMemoryManager &os, Asid asid,
                            Cycles max_cycles);

/**
 * One simulated system instance of config.cores cores. Construct,
 * then run().
 */
class SimEngine
{
  public:
    SimEngine(const SystemConfig &config, const WorkloadSpec &workload);
    ~SimEngine();

    /** Execute the configured per-core instruction budget. */
    RunResult run();

    /**
     * This core's decorrelated RNG seed. Core 0 keeps the config seed
     * unchanged (single-core bit-compatibility); other cores get a
     * SplitMix64 finalizer over (seed, core) so adjacent cores'
     * reference streams share no low-bit structure.
     */
    static std::uint64_t coreSeed(std::uint64_t seed, unsigned core);

    /** @name Component access (tests / advanced drivers). */
    /// @{
    OsMemoryManager &os() { return *os_; }
    TlbHierarchy &tlb(unsigned core = 0)
    {
        return complexes_[core]->tlb();
    }
    L1Cache &l1(unsigned core = 0) { return complexes_[core]->l1(); }
    /** nullptr unless an SEESAW kind (cached; hot path). */
    SeesawCache *seesawL1(unsigned core = 0)
    {
        return complexes_[core]->seesawL1();
    }
    CpuModel &cpu(unsigned core = 0) { return complexes_[core]->cpu(); }
    EnergyModel &energy() { return *energy_; }
    const SystemConfig &config() const { return config_; }
    Asid asid() const { return asid_; }
    unsigned cores() const
    {
        return static_cast<unsigned>(complexes_.size());
    }
    CoreComplex &complex(unsigned core) { return *complexes_[core]; }

    /** The coherence fabric (cores>1), or nullptr at cores=1. */
    CoherenceFabric *fabric() { return fabric_.get(); }

    /** The exact directory, or nullptr unless a cores>1 directory
     *  fabric is active. */
    ExactDirectory *directory() { return directory_; }

    /**
     * One-shot full bidirectional MOESI cross-check of the directory
     * against every L1 (check/coherence_audits.hh). Always true when
     * no directory fabric is active.
     */
    bool checkDirectoryInvariant() const;

    /** The invariant auditor, or nullptr when audits are off or the
     *  audit layer is compiled out. */
    check::InvariantAuditor *auditor() { return auditor_.get(); }
    /// @}

  private:
    SystemConfig config_;
    WorkloadSpec workload_;

    LatencyTable latency_;
    std::unique_ptr<EnergyModel> energy_;
    std::unique_ptr<OsMemoryManager> os_;
    std::unique_ptr<Memhog> memhog_;

    /** Shared LLC behind every core's private L2 (cores>1 only; a
     *  single-core complex owns a private LLC inside its
     *  OuterHierarchy, matching the original System). */
    std::unique_ptr<SetAssocCache> sharedLlc_;
    std::unique_ptr<CoherenceFabric> fabric_;
    ExactDirectory *directory_ = nullptr; //!< cached fabric_ downcast

    std::vector<std::unique_ptr<CoreComplex>> complexes_;

    Asid asid_ = 0;
    Addr heapBase_ = 0;
    Addr textBase_ = 0;

    /** Advance core @p c by one reference, retiring at most @p room
     *  instructions. @return instructions retired. */
    std::uint64_t step(CoreId c, std::uint64_t room);

    /** Execute @p per_core_budget instructions on every core,
     *  round-robin one reference at a time. */
    void runLoop(std::uint64_t per_core_budget);

    /** Zero every measured counter (after warmup). */
    void resetMeasurement();

    /** Aggregate every core's stats into the RunResult (end of run —
     *  the one place string-keyed stat reads are sanctioned). */
    RunResult collectResults(Cycles max_cycles);

    /** OS housekeeping hooks (promotion, splinter, context switch). */
    void osTick(CoreId c);

    void applyPromotion(const PromotionEvent &event);
    void applySplinter(const SplinterEvent &event);

    bool isSeesawKind() const
    {
        return config_.l1Kind == L1Kind::Seesaw ||
               config_.l1Kind == L1Kind::SeesawWayPredicted;
    }

    std::uint64_t nextPromotion_ = 0;
    std::uint64_t nextSplinter_ = 0;
    Rng eventRng_;

    /** Build the auditor and register the per-layer checks. */
    void setupAuditor();
    std::unique_ptr<check::InvariantAuditor> auditor_;
};

} // namespace seesaw

#endif // SEESAW_SIM_SIM_ENGINE_HH
