/**
 * @file
 * Plain-text table rendering for the bench binaries, so each bench can
 * print the same rows/series the paper's tables and figures report.
 */

#ifndef SEESAW_SIM_REPORT_HH
#define SEESAW_SIM_REPORT_HH

#include <string>
#include <vector>

namespace seesaw {

/**
 * A fixed-column text table with automatic width computation.
 */
class TableReporter
{
  public:
    explicit TableReporter(std::vector<std::string> headers);

    /** Append a row (must match the header count). */
    void addRow(std::vector<std::string> cells);

    /** Render the table to a string. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

    /** Format a double with @p decimals places. */
    static std::string fmt(double value, int decimals = 2);

    /** Format a percentage with a trailing %%. */
    static std::string pct(double value, int decimals = 1);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print a section banner (figure/table id + caption). */
void printBanner(const std::string &experiment_id,
                 const std::string &caption);

} // namespace seesaw

#endif // SEESAW_SIM_REPORT_HH
