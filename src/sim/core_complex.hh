/**
 * @file
 * One core's private slice of the simulated system: the core timing
 * model, its TLB hierarchy and TFT, an L1D of the configured design,
 * the optional L1I, the private L2 (plus an LLC reference — its own at
 * cores=1, the engine's shared one otherwise) and the per-core
 * reference/fetch streams. The SimEngine (sim/sim_engine.hh) drives N
 * of these over a coherence fabric; every per-access path lives here
 * so cores=1 executes exactly the classic single-core system.
 */

#ifndef SEESAW_SIM_CORE_COMPLEX_HH
#define SEESAW_SIM_CORE_COMPLEX_HH

#include <memory>

#include "cache/baseline_caches.hh"
#include "cache/prefetch/prefetch.hh"
#include "coherence/fabric.hh"
#include "coherence/probe_engine.hh"
#include "model/latency_table.hh"
#include "sim/config.hh"
#include "tlb/tlb_hierarchy.hh"
#include "workload/code_stream.hh"
#include "workload/reference_stream.hh"
#include "workload/trace.hh"
#include "workload/workload_spec.hh"

namespace seesaw {

/**
 * Per-core unit of the SimEngine. Construction mirrors the original
 * single-core System exactly (same component order, same RNG salts on
 * the per-core seed) so that core 0 of a cores=1 engine is
 * bit-identical to the pre-refactor System.
 */
class CoreComplex
{
  public:
    /**
     * @param core_seed This core's decorrelated seed
     *        (SimEngine::coreSeed); equals config.seed for core 0.
     * @param shared_llc Non-null at cores>1: the engine-owned LLC all
     *        complexes share behind their private L2s.
     */
    CoreComplex(const SystemConfig &config, const WorkloadSpec &workload,
                const LatencyTable &latency, OsMemoryManager &os,
                EnergyModel &energy, Asid asid, Addr heap_base,
                Addr text_base, CoreId core, std::uint64_t core_seed,
                SetAssocCache *shared_llc);
    ~CoreComplex();

    /** Next reference from the trace or the synthetic stream. */
    MemRef nextRef();

    /**
     * Handle one memory reference end to end. @p fabric is null for
     * single-core runs (synthetic probe load instead).
     * @return true when the access was a write or an L1 miss — the
     *         events that can change global coherence state.
     */
    bool doMemoryAccess(const MemRef &ref, CoherenceFabric *fabric);

    /** Account instruction fetches for @p instructions committed. */
    void doInstructionFetches(std::uint64_t instructions);

    /**
     * @name One-pass decomposition (sim/multi_config_engine.hh).
     *
     * doMemoryAccess/doInstructionFetches are compositions of these
     * phases; a MultiConfigEngine interleaves the same phases across
     * substrates around one shared TLB lookup per access so that each
     * substrate's state sequence is bit-identical to a solo run.
     */
    /// @{

    /** Pre-TLB TFT probe state for @p va (-1 when no D-side TFT). */
    int probeDataTft(Addr va);

    /** Pre-TLB I-side TFT probe for @p va (-1 when no I-side TFT). */
    int probeCodeTft(Addr va);

    /**
     * Charge the translation energy/fault costs implied by the *first*
     * TLB lookup of an access: L1-TLB probe energy, L2-TLB energy on an
     * L1 miss, walk energy on a walk, and — when the lookup faulted —
     * the page-fault count and stall (the demand-paging map and the
     * retry lookup are the caller's).
     */
    void chargeTranslation(const TlbLookupResult &tr);

    /** Steps 2-6 of a data access: fabric ordering, L1 access, miss
     *  handling, core timing, TLB penalty. @p tr is the final
     *  (non-faulting) lookup result. */
    bool finishMemoryAccess(const MemRef &ref, const TlbLookupResult &tr,
                            int tft_probe, CoherenceFabric *fabric);

    /** Accrue @p instructions against the 4-instructions-per-line
     *  fetch carry. @return whole fetch lines to perform now. */
    std::uint64_t takeFetchLines(std::uint64_t instructions);

    /** One fetched line's L1I access + miss handling + TLB penalty. */
    void finishFetch(Addr va, const TlbLookupResult &tr, int tft_probe);

    /**
     * Route a 2MB-fill notification to the TFT owning @p va_base (the
     * I-side TFT for text addresses when an L1I is modelled, the
     * D-side TFT otherwise). This is the single superpage hook; a
     * multi-config TLB group broadcasts it to every member complex.
     */
    void markTftRegion(Addr va_base);

    /** Point the per-access paths at a TLB hierarchy owned elsewhere
     *  (a multi-config TLB group). Defaults to this complex's own. */
    void setActiveTlb(TlbHierarchy *tlb) { activeTlb_ = tlb; }
    TlbHierarchy &activeTlb() { return *activeTlb_; }

    /// @}

    /** Zero every measured per-core counter (after warmup). */
    void resetMeasurement();

    /** @name Component access. */
    /// @{
    TlbHierarchy &tlb() { return *tlb_; }
    L1Cache &l1() { return *l1_; }
    L1Cache *l1i() { return l1i_.get(); }
    /** nullptr unless an SEESAW kind (cached; hot path). */
    SeesawCache *seesawL1() { return seesawD_; }
    SeesawCache *seesawL1i() { return seesawI_; }
    CpuModel &cpu() { return *cpu_; }
    OuterHierarchy &outer() { return *outer_; }
    /** The synthetic probe engine (cores=1 only), or nullptr. */
    ProbeEngine *probeEngine() { return probes_.get(); }
    CoreId core() const { return core_; }
    std::uint64_t pageFaults() const { return pageFaults_; }
    /// @}

    /** @name L1D prefetch engine counters (zero when Kind::None). */
    /// @{
    std::uint64_t prefetchIssued() const { return prefetchIssued_; }
    std::uint64_t prefetchUseful() const { return prefetchUseful_; }
    std::uint64_t prefetchLate() const { return prefetchLate_; }
    std::uint64_t prefetchIllegalCrossing() const
    {
        return prefetchIllegalCrossing_;
    }
    /// @}

    /** Instructions retired by this core, including warmup (drives the
     *  per-core OS-event schedule). */
    std::uint64_t retiredTotal_ = 0;

    /** Next context-switch point in retiredTotal_ terms. */
    std::uint64_t nextContextSwitch_ = 0;

  private:
    const SystemConfig &config_;
    const WorkloadSpec &workload_;
    OsMemoryManager &os_;
    EnergyModel &energy_;

    std::unique_ptr<TlbHierarchy> tlb_;
    TlbHierarchy *activeTlb_ = nullptr; //!< tlb_ unless re-pointed
    std::unique_ptr<L1Cache> l1_;
    std::unique_ptr<OuterHierarchy> outer_;
    std::unique_ptr<CpuModel> cpu_;
    std::unique_ptr<ProbeEngine> probes_;
    std::unique_ptr<ReferenceStream> stream_;
    std::unique_ptr<TraceReader> trace_; //!< replaces stream_ if set

    // Optional L1I application (§V).
    std::unique_ptr<L1Cache> l1i_;
    std::unique_ptr<CodeStream> code_;

    /** Cached downcasts of l1_/l1i_ when they are SEESAW caches, so
     *  the per-access and per-fetch paths never pay a dynamic_cast. */
    SeesawCache *seesawD_ = nullptr;
    SeesawCache *seesawI_ = nullptr;

    /** L1 tag-store geometry, cached so the per-access energy calls
     *  skip the virtual tags() accessor. */
    std::uint64_t l1SizeBytes_ = 0;
    unsigned l1Assoc_ = 0;
    unsigned l1LineBytes_ = 64;
    Addr textBase_ = 0;
    double fetchCarry_ = 0.0;

    Asid asid_ = 0;
    CoreId core_ = 0;
    std::uint64_t pageFaults_ = 0;

    /** L1D prefetch engine (nullptr when PrefetchKind::None). */
    std::unique_ptr<PrefetchEngine> prefetcher_;
    std::vector<Addr> pfCandidates_; //!< scratch (avoids per-access
                                     //!< allocation)
    std::uint64_t prefetchIssued_ = 0;
    std::uint64_t prefetchUseful_ = 0;
    std::uint64_t prefetchLate_ = 0;
    std::uint64_t prefetchIllegalCrossing_ = 0;

    /**
     * Train the prefetcher on one demand access and issue the legal
     * candidates as demand-like read fills tagged prefetched.
     * Candidates outside the triggering translation's page are dropped
     * (a different page could live in a different SEESAW partition and
     * would need its own translation). @return any fill issued (a
     * coherence transition the caller must report).
     */
    bool issuePrefetches(const MemRef &ref, const TlbLookupResult &tr,
                         bool demand_miss, CoherenceFabric *fabric);

    bool isSeesawKind() const
    {
        return config_.l1Kind == L1Kind::Seesaw ||
               config_.l1Kind == L1Kind::SeesawWayPredicted;
    }
};

} // namespace seesaw

#endif // SEESAW_SIM_CORE_COMPLEX_HH
