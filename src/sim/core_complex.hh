/**
 * @file
 * One core's private slice of the simulated system: the core timing
 * model, its TLB hierarchy and TFT, an L1D of the configured design,
 * the optional L1I, the private L2 (plus an LLC reference — its own at
 * cores=1, the engine's shared one otherwise) and the per-core
 * reference/fetch streams. The SimEngine (sim/sim_engine.hh) drives N
 * of these over a coherence fabric; every per-access path lives here
 * so cores=1 executes exactly the classic single-core system.
 */

#ifndef SEESAW_SIM_CORE_COMPLEX_HH
#define SEESAW_SIM_CORE_COMPLEX_HH

#include <memory>

#include "cache/baseline_caches.hh"
#include "coherence/fabric.hh"
#include "coherence/probe_engine.hh"
#include "model/latency_table.hh"
#include "sim/config.hh"
#include "tlb/tlb_hierarchy.hh"
#include "workload/code_stream.hh"
#include "workload/reference_stream.hh"
#include "workload/trace.hh"
#include "workload/workload_spec.hh"

namespace seesaw {

/**
 * Per-core unit of the SimEngine. Construction mirrors the original
 * single-core System exactly (same component order, same RNG salts on
 * the per-core seed) so that core 0 of a cores=1 engine is
 * bit-identical to the pre-refactor System.
 */
class CoreComplex
{
  public:
    /**
     * @param core_seed This core's decorrelated seed
     *        (SimEngine::coreSeed); equals config.seed for core 0.
     * @param shared_llc Non-null at cores>1: the engine-owned LLC all
     *        complexes share behind their private L2s.
     */
    CoreComplex(const SystemConfig &config, const WorkloadSpec &workload,
                const LatencyTable &latency, OsMemoryManager &os,
                EnergyModel &energy, Asid asid, Addr heap_base,
                Addr text_base, CoreId core, std::uint64_t core_seed,
                SetAssocCache *shared_llc);
    ~CoreComplex();

    /** Next reference from the trace or the synthetic stream. */
    MemRef nextRef();

    /**
     * Handle one memory reference end to end. @p fabric is null for
     * single-core runs (synthetic probe load instead).
     * @return true when the access was a write or an L1 miss — the
     *         events that can change global coherence state.
     */
    bool doMemoryAccess(const MemRef &ref, CoherenceFabric *fabric);

    /** Account instruction fetches for @p instructions committed. */
    void doInstructionFetches(std::uint64_t instructions);

    /** Zero every measured per-core counter (after warmup). */
    void resetMeasurement();

    /** @name Component access. */
    /// @{
    TlbHierarchy &tlb() { return *tlb_; }
    L1Cache &l1() { return *l1_; }
    L1Cache *l1i() { return l1i_.get(); }
    /** nullptr unless an SEESAW kind (cached; hot path). */
    SeesawCache *seesawL1() { return seesawD_; }
    SeesawCache *seesawL1i() { return seesawI_; }
    CpuModel &cpu() { return *cpu_; }
    OuterHierarchy &outer() { return *outer_; }
    /** The synthetic probe engine (cores=1 only), or nullptr. */
    ProbeEngine *probeEngine() { return probes_.get(); }
    CoreId core() const { return core_; }
    std::uint64_t pageFaults() const { return pageFaults_; }
    /// @}

    /** Instructions retired by this core, including warmup (drives the
     *  per-core OS-event schedule). */
    std::uint64_t retiredTotal_ = 0;

    /** Next context-switch point in retiredTotal_ terms. */
    std::uint64_t nextContextSwitch_ = 0;

  private:
    const SystemConfig &config_;
    const WorkloadSpec &workload_;
    OsMemoryManager &os_;
    EnergyModel &energy_;

    std::unique_ptr<TlbHierarchy> tlb_;
    std::unique_ptr<L1Cache> l1_;
    std::unique_ptr<OuterHierarchy> outer_;
    std::unique_ptr<CpuModel> cpu_;
    std::unique_ptr<ProbeEngine> probes_;
    std::unique_ptr<ReferenceStream> stream_;
    std::unique_ptr<TraceReader> trace_; //!< replaces stream_ if set

    // Optional L1I application (§V).
    std::unique_ptr<L1Cache> l1i_;
    std::unique_ptr<CodeStream> code_;

    /** Cached downcasts of l1_/l1i_ when they are SEESAW caches, so
     *  the per-access and per-fetch paths never pay a dynamic_cast. */
    SeesawCache *seesawD_ = nullptr;
    SeesawCache *seesawI_ = nullptr;

    /** L1 tag-store geometry, cached so the per-access energy calls
     *  skip the virtual tags() accessor. */
    std::uint64_t l1SizeBytes_ = 0;
    unsigned l1Assoc_ = 0;
    unsigned l1LineBytes_ = 64;
    Addr textBase_ = 0;
    double fetchCarry_ = 0.0;

    Asid asid_ = 0;
    CoreId core_ = 0;
    std::uint64_t pageFaults_ = 0;

    bool isSeesawKind() const
    {
        return config_.l1Kind == L1Kind::Seesaw ||
               config_.l1Kind == L1Kind::SeesawWayPredicted;
    }
};

} // namespace seesaw

#endif // SEESAW_SIM_CORE_COMPLEX_HH
