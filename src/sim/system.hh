/**
 * @file
 * The full-system simulation harness: one core, its TLB hierarchy and
 * TFT, an L1 of the configured design, the outer memory hierarchy, the
 * coherence probe load, and the OS memory manager that backs the
 * workload's footprint with superpages when physical contiguity allows.
 */

#ifndef SEESAW_SIM_SYSTEM_HH
#define SEESAW_SIM_SYSTEM_HH

#include <memory>
#include <string>

#include "cache/baseline_caches.hh"
#include "cache/next_level.hh"
#include "check/audit.hh"
#include "coherence/probe_engine.hh"
#include "core/seesaw_cache.hh"
#include "cpu/cpu_model.hh"
#include "mem/memhog.hh"
#include "mem/os_memory_manager.hh"
#include "model/energy_model.hh"
#include "model/latency_table.hh"
#include "tlb/tlb_hierarchy.hh"
#include "workload/code_stream.hh"
#include "workload/reference_stream.hh"
#include "workload/trace.hh"
#include "workload/workload_spec.hh"

namespace seesaw::check {
class InvariantAuditor;
} // namespace seesaw::check

namespace seesaw {

/** Which L1 design the system instantiates. */
enum class L1Kind : std::uint8_t
{
    ViptBaseline,       //!< traditional VIPT (the paper's baseline)
    Pipt,               //!< PIPT with free associativity (Fig 14)
    Seesaw,             //!< the paper's design
    ViptWayPredicted,   //!< baseline + MRU way predictor (Fig 15 "WP")
    SeesawWayPredicted, //!< combined WP+SEESAW (Fig 15)
    Sipt,               //!< speculatively indexed (related work, §VII)
};

/** Full system configuration. */
struct SystemConfig
{
    CoreKind coreKind = CoreKind::OutOfOrder;
    L1Kind l1Kind = L1Kind::Seesaw;

    std::uint64_t l1SizeBytes = 32 * 1024;
    unsigned l1Assoc = 8;
    unsigned partitionWays = 4;
    double freqGhz = 1.33;
    InsertionPolicy policy = InsertionPolicy::FourWay;
    unsigned tftEntries = 16;
    unsigned tftAssoc = 1; //!< 1 = the paper's direct-mapped TFT

    /** Use an ARM/SPARC-style fully-associative unified L1 TLB instead
     *  of the Intel-style split L1 TLBs (the default follows the core
     *  preset). */
    bool unifiedL1Tlb = false;
    unsigned unifiedL1TlbEntries = 64;

    /** PIPT alternative: serial TLB latency in cycles. */
    unsigned piptTlbCycles = 2;

    /** SIPT alternative: reduced associativity (sets grow instead). */
    unsigned siptAssoc = 2;

    OsParams os;
    MemhogParams memhog;
    double memhogFraction = 0.0;

    OuterHierarchyParams outer;
    CoherenceKind fabric = CoherenceKind::Directory;

    std::uint64_t instructions = 2'000'000;

    /** Instructions executed before measurement starts: warms caches,
     *  TLBs and the TFT, and amortises cold (first-touch) misses that
     *  the paper's 10-billion-instruction traces never see. */
    std::uint64_t warmupInstructions = 150'000;

    std::uint64_t seed = 1;

    /** §IV-B3: scheduler assumes the fast hit time only while the 2MB
     *  L1 TLB holds at least a quarter of its capacity. */
    bool schedulerCounterPolicy = true;

    /** Context-switch interval (TFT flush; no ASID tags, §IV-C3).
     *  0 disables. */
    std::uint64_t contextSwitchInterval = 1'000'000;

    /** khugepaged pass interval in instructions (0 disables). */
    std::uint64_t promotionInterval = 500'000;

    /** Splinter-event interval in instructions (0 disables). */
    std::uint64_t splinterInterval = 4'000'000;

    /** TLB-shootdown / sweep cost for promotion & splinter events. */
    unsigned shootdownCycles = 175;

    /**
     * Also model a 32KB 8-way L1 instruction cache (Table II) fed by a
     * synthetic fetch stream, applying SEESAW to it when l1Kind is a
     * SEESAW kind — the §V extension the paper flags as valuable for
     * cloud workloads with large instruction footprints.
     */
    bool modelInstructionCache = false;

    /** L1I design selection when modelInstructionCache is set. */
    enum class ICacheKind : std::uint8_t
    {
        FollowL1, //!< SEESAW iff l1Kind is a SEESAW kind (default)
        Vipt,     //!< force a baseline VIPT L1I
        Seesaw,   //!< force a SEESAW L1I
    };
    ICacheKind icacheKind = ICacheKind::FollowL1;

    /** THP eligibility of the text segment (2MB text mappings). */
    double codeThpEligibleFraction = 0.85;

    /**
     * Back the workload's heap with explicit 1GB superpages
     * (hugetlbfs-style) instead of THP 2MB pages — the §IV
     * generalisation. Falls back to THP for any tail the 1GB
     * allocator cannot satisfy.
     */
    bool useOneGbHeap = false;

    /**
     * Replay an externally captured binary trace (workload/trace.hh)
     * instead of the synthetic reference stream. Addresses are mapped
     * on demand (2MB chunks, THP-eligible per the workload spec); the
     * trace loops if shorter than the instruction budget.
     */
    std::string tracePath;

    /** Invariant-audit cadence (src/check). Modes other than Off need
     *  a build with -DSEESAW_AUDIT=ON; otherwise a warning is issued
     *  and no audits run. */
    check::AuditOptions audit;
};

/** Everything a bench needs from one simulation. */
struct RunResult
{
    std::string workload;
    std::uint64_t instructions = 0;
    Cycles cycles = 0;
    double ipc = 0.0;
    double runtimeNs = 0.0;

    std::uint64_t l1Accesses = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l1Misses = 0;
    double l1Mpki = 0.0;
    std::uint64_t fastHits = 0; //!< completed at the fast latency

    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t llcAccesses = 0;
    std::uint64_t llcHits = 0;
    std::uint64_t dramAccesses = 0;

    std::uint64_t tftLookups = 0;
    std::uint64_t tftHits = 0;
    std::uint64_t superpageRefs = 0;
    std::uint64_t superpageRefsTftMiss = 0;
    std::uint64_t superpageRefsTftMissL1Hit = 0;
    std::uint64_t superpageRefsTftMissL1Miss = 0;

    double superpageCoverage = 0.0;    //!< footprint fraction (Fig 3)
    double superpageRefFraction = 0.0; //!< reference fraction (§V)

    double energyTotalNj = 0.0;
    double l1CpuDynamicNj = 0.0;
    double l1CoherenceDynamicNj = 0.0;
    double l1LeakageNj = 0.0;
    double outerNj = 0.0;
    double translationNj = 0.0;

    std::uint64_t l1iAccesses = 0;
    std::uint64_t l1iMisses = 0;

    std::uint64_t squashes = 0;
    std::uint64_t probes = 0;
    std::uint64_t probeHits = 0;
    std::uint64_t ownerSupplies = 0; //!< cache-to-cache transfers
                                     //!< (multi-core runs only)
    double wpAccuracy = 0.0;

    std::uint64_t promotions = 0;
    std::uint64_t splinters = 0;
    std::uint64_t pageFaults = 0;

    /** Field-wise equality, so the harness can assert that parallel
     *  and serial campaign executions are bit-identical. */
    bool operator==(const RunResult &) const = default;
};

/**
 * One simulated system instance. Construct, then run().
 */
class System
{
  public:
    System(const SystemConfig &config, const WorkloadSpec &workload);
    ~System();

    /** Execute the configured instruction budget. */
    RunResult run();

    /** @name Component access (tests / advanced drivers). */
    /// @{
    OsMemoryManager &os() { return *os_; }
    TlbHierarchy &tlb() { return *tlb_; }
    L1Cache &l1() { return *l1_; }
    /** nullptr unless an SEESAW kind (cached; hot path). */
    SeesawCache *seesawL1() { return seesawD_; }
    CpuModel &cpu() { return *cpu_; }
    EnergyModel &energy() { return *energy_; }
    const SystemConfig &config() const { return config_; }
    Asid asid() const { return asid_; }

    /** The invariant auditor, or nullptr when audits are off or the
     *  audit layer is compiled out. */
    check::InvariantAuditor *auditor() { return auditor_.get(); }
    /// @}

  private:
    SystemConfig config_;
    WorkloadSpec workload_;

    LatencyTable latency_;
    std::unique_ptr<EnergyModel> energy_;
    std::unique_ptr<OsMemoryManager> os_;
    std::unique_ptr<Memhog> memhog_;
    std::unique_ptr<TlbHierarchy> tlb_;
    std::unique_ptr<L1Cache> l1_;
    std::unique_ptr<OuterHierarchy> outer_;
    std::unique_ptr<CpuModel> cpu_;
    std::unique_ptr<ProbeEngine> probes_;
    std::unique_ptr<ReferenceStream> stream_;
    std::unique_ptr<TraceReader> trace_; //!< replaces stream_ if set

    /** Next reference from the trace or the synthetic stream. */
    MemRef nextRef();

    // Optional L1I application (§V).
    std::unique_ptr<L1Cache> l1i_;
    std::unique_ptr<CodeStream> code_;

    /** Cached downcasts of l1_/l1i_ when they are SEESAW caches, so
     *  the per-access and per-fetch paths never pay a dynamic_cast. */
    SeesawCache *seesawD_ = nullptr;
    SeesawCache *seesawI_ = nullptr;

    /** L1 tag-store geometry, cached so the per-access energy calls
     *  skip the virtual tags() accessor. */
    std::uint64_t l1SizeBytes_ = 0;
    unsigned l1Assoc_ = 0;
    unsigned l1LineBytes_ = 64;
    Addr textBase_ = 0;
    double fetchCarry_ = 0.0;

    Asid asid_ = 0;
    Addr heapBase_ = 0;
    std::uint64_t pageFaults_ = 0;

    /** Handle one memory reference end to end. */
    void doMemoryAccess(const MemRef &ref);

    /** Account instruction fetches for @p instructions committed. */
    void doInstructionFetches(std::uint64_t instructions);

    /** Execute @p budget instructions through the main loop. */
    void runLoop(std::uint64_t budget);

    /** Zero every measured counter (after warmup). */
    void resetMeasurement();

    std::uint64_t retiredBase_ = 0; //!< retirement offset for osTick

    /** OS housekeeping hooks (promotion, splinter, context switch). */
    void osTick(std::uint64_t retired);

    void applyPromotion(const PromotionEvent &event);
    void applySplinter(const SplinterEvent &event);

    bool isSeesawKind() const
    {
        return config_.l1Kind == L1Kind::Seesaw ||
               config_.l1Kind == L1Kind::SeesawWayPredicted;
    }

    std::uint64_t nextContextSwitch_ = 0;
    std::uint64_t nextPromotion_ = 0;
    std::uint64_t nextSplinter_ = 0;
    Rng eventRng_;

    /** Build the auditor and register the per-layer checks. */
    void setupAuditor();
    std::unique_ptr<check::InvariantAuditor> auditor_;
};

} // namespace seesaw

#endif // SEESAW_SIM_SYSTEM_HH
