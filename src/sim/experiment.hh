/**
 * @file
 * Experiment conveniences shared by the benches and examples: run a
 * workload under a config, compare designs, and read environment knobs
 * (instruction budget, verbosity) so benchmark binaries stay fast by
 * default but can be cranked up for a full reproduction.
 */

#ifndef SEESAW_SIM_EXPERIMENT_HH
#define SEESAW_SIM_EXPERIMENT_HH

#include <string>
#include <vector>

#include "sim/sim_engine.hh"

namespace seesaw {

/** Simulate @p workload on @p config (constructs a fresh SimEngine). */
RunResult simulate(const WorkloadSpec &workload,
                   const SystemConfig &config);

/** Percent improvement of @p variant over @p baseline runtime. */
double runtimeImprovementPercent(const RunResult &baseline,
                                 const RunResult &variant);

/** Percent of memory-hierarchy energy saved by @p variant. */
double energySavedPercent(const RunResult &baseline,
                          const RunResult &variant);

/** Simple (avg, min, max) summary of a series. */
struct Summary
{
    double avg = 0.0;
    double min = 0.0;
    double max = 0.0;
};

/** Summarise a non-empty series. */
Summary summarize(const std::vector<double> &values);

/**
 * Instruction budget for experiments: SEESAW_INSTRUCTIONS overrides
 * the per-bench default (benches default to quick runs; the paper's
 * 10B-instruction traces are approximated by longer budgets).
 */
std::uint64_t experimentInstructions(std::uint64_t fallback);

/** SEESAW_MEM_BYTES override for simulated physical memory. */
std::uint64_t experimentMemBytes(std::uint64_t fallback);

/** Baseline-vs-SEESAW pair on otherwise identical configs. */
struct DesignComparison
{
    RunResult baseline;
    RunResult seesaw;
    double runtimeImprovementPct = 0.0;
    double energySavedPct = 0.0;
};

/**
 * Run @p workload under @p base_config twice: once with the baseline
 * VIPT L1 and once with SEESAW, holding everything else fixed.
 */
DesignComparison compareBaselineVsSeesaw(const WorkloadSpec &workload,
                                         SystemConfig base_config);

} // namespace seesaw

#endif // SEESAW_SIM_EXPERIMENT_HH
