#include "tlb/tlb_hierarchy.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace seesaw {

TlbHierarchyParams
TlbHierarchyParams::sandybridge()
{
    TlbHierarchyParams p;
    p.l1Entries4k = 128;
    p.l1Assoc4k = 4;
    p.l1Entries2m = 16;
    p.l1Assoc2m = 4;
    p.l1Entries1g = 4;
    p.l1Assoc1g = 4;
    p.l2Entries = 512;
    p.l2Assoc = 4;
    p.l2Holds2m = true;
    return p;
}

TlbHierarchyParams
TlbHierarchyParams::atom()
{
    TlbHierarchyParams p;
    p.l1Entries4k = 64;
    p.l1Assoc4k = 4;
    p.l1Entries2m = 32;
    p.l1Assoc2m = 4;
    p.l1Entries1g = 4;
    p.l1Assoc1g = 4;
    p.l2Entries = 512;
    p.l2Assoc = 4;
    p.l2Holds2m = true;
    return p;
}

TlbHierarchyParams
TlbHierarchyParams::unified(unsigned entries)
{
    TlbHierarchyParams p;
    p.unifiedL1 = true;
    p.unifiedL1Entries = entries;
    return p;
}

TlbHierarchy::TlbHierarchy(const TlbHierarchyParams &params,
                           const PageTable &page_table)
    : params_(params),
      l14k_("l1tlb_4k", params.l1Entries4k, params.l1Assoc4k,
            PageSize::Base4KB,
            withSeedSalt(params.replacement, 0x11ULL)),
      l12m_("l1tlb_2m", params.l1Entries2m, params.l1Assoc2m,
            PageSize::Super2MB,
            withSeedSalt(params.replacement, 0x12ULL)),
      l11g_("l1tlb_1g", params.l1Entries1g, params.l1Assoc1g,
            PageSize::Super1GB,
            withSeedSalt(params.replacement, 0x13ULL)),
      l24k_("l2tlb_4k", params.l2Entries, params.l2Assoc,
            PageSize::Base4KB,
            withSeedSalt(params.replacement, 0x24ULL)),
      l22m_("l2tlb_2m",
            std::max(params.l2Assoc, params.l2Entries / 4),
            params.l2Assoc, PageSize::Super2MB,
            withSeedSalt(params.replacement, 0x22ULL)),
      walker_(page_table, params.walkCyclesPerLevel),
      stats_("tlb"),
      stLookups_(&stats_.scalar("lookups")),
      stL1Hits_(&stats_.scalar("l1_hits")),
      stL2Lookups_(&stats_.scalar("l2_lookups")),
      stL2Hits_(&stats_.scalar("l2_hits")),
      stWalks_(&stats_.scalar("walks")),
      stFaults_(&stats_.scalar("faults")),
      stInvlpg_(&stats_.scalar("invlpg"))
{
    if (params_.unifiedL1) {
        unified_ = std::make_unique<UnifiedTlb>(
            "l1tlb_unified", params_.unifiedL1Entries,
            withSeedSalt(params_.replacement, 0x1fULL));
    }
}

void
TlbHierarchy::fillL1(Asid asid, const Translation &t, Addr va)
{
    if (unified_) {
        unified_->insert(asid, t.vaBase, t.paBase, t.size);
        if (isSuperpage(t.size) && on2mFill_)
            on2mFill_(asid, alignDown(va, 2 * 1024 * 1024));
        return;
    }
    switch (t.size) {
      case PageSize::Base4KB:
        l14k_.insert(asid, t.vaBase, t.paBase);
        break;
      case PageSize::Super2MB:
        l12m_.insert(asid, t.vaBase, t.paBase);
        if (on2mFill_)
            on2mFill_(asid, t.vaBase);
        break;
      case PageSize::Super1GB:
        l11g_.insert(asid, t.vaBase, t.paBase);
        // The TFT tracks 2MB regions; any 2MB-aligned region inside a
        // 1GB page is superpage-backed (>=21 page-offset bits), so the
        // design "generalizes readily to 1GB superpages" (§IV) by
        // marking the region around the access.
        if (on2mFill_)
            on2mFill_(asid, alignDown(va, 2 * 1024 * 1024));
        break;
    }
}

void
TlbHierarchy::fillL2(Asid asid, const Translation &t)
{
    switch (t.size) {
      case PageSize::Base4KB:
        l24k_.insert(asid, t.vaBase, t.paBase);
        break;
      case PageSize::Super2MB:
        if (params_.l2Holds2m)
            l22m_.insert(asid, t.vaBase, t.paBase);
        break;
      case PageSize::Super1GB:
        break; // 1GB entries are not cached in the L2 TLB
    }
}

TlbLookupResult
TlbHierarchy::lookup(Asid asid, Addr va)
{
    TlbLookupResult res;
    ++*stLookups_;

    if (unified_) {
        if (auto e = unified_->lookup(asid, va)) {
            res.l1Hit = true;
            res.translation =
                Translation{e->paBase,
                            alignDown(va, pageBytes(e->size)), e->size};
            ++*stL1Hits_;
            if (params_.refreshOn2mHit && isSuperpage(e->size) &&
                on2mFill_) {
                on2mFill_(asid, alignDown(va, 2 * 1024 * 1024));
            }
            return res;
        }
    } else
    // All split L1 TLBs are probed in parallel, hidden under the L1
    // cache's set access.
    if (const TlbEntry *e = l14k_.lookupEntry(asid, va)) {
        res.l1Hit = true;
        res.translation = Translation{e->paBase,
                                      alignDown(va, pageBytes(e->size)),
                                      e->size};
        ++*stL1Hits_;
        return res;
    }
    if (const TlbEntry *e = l12m_.lookupEntry(asid, va)) {
        res.l1Hit = true;
        res.translation = Translation{e->paBase,
                                      alignDown(va, pageBytes(e->size)),
                                      e->size};
        ++*stL1Hits_;
        if (params_.refreshOn2mHit && on2mFill_)
            on2mFill_(asid, res.translation.vaBase);
        return res;
    }
    if (const TlbEntry *e = l11g_.lookupEntry(asid, va)) {
        res.l1Hit = true;
        res.translation = Translation{e->paBase,
                                      alignDown(va, pageBytes(e->size)),
                                      e->size};
        ++*stL1Hits_;
        if (params_.refreshOn2mHit && on2mFill_)
            on2mFill_(asid, alignDown(va, 2 * 1024 * 1024));
        return res;
    }

    // L2 TLB.
    res.penaltyCycles += params_.l2LatencyCycles;
    ++*stL2Lookups_;
    if (const TlbEntry *e = l24k_.lookupEntry(asid, va)) {
        res.l2Hit = true;
        res.translation = Translation{e->paBase,
                                      alignDown(va, pageBytes(e->size)),
                                      e->size};
        ++*stL2Hits_;
        fillL1(asid, res.translation, va);
        return res;
    }
    if (params_.l2Holds2m) {
        if (const TlbEntry *e = l22m_.lookupEntry(asid, va)) {
            res.l2Hit = true;
            res.translation =
                Translation{e->paBase,
                            alignDown(va, pageBytes(e->size)), e->size};
            ++*stL2Hits_;
            fillL1(asid, res.translation, va);
            return res;
        }
    }

    // Page walk.
    auto walk = walker_.walk(asid, va);
    if (!walk) {
        res.fault = true;
        ++*stFaults_;
        return res;
    }
    res.walked = true;
    ++*stWalks_;
    res.penaltyCycles += walk->cycles;
    res.translation = walk->translation;
    fillL2(asid, res.translation);
    fillL1(asid, res.translation, va);
    return res;
}

void
TlbHierarchy::invalidatePage(Asid asid, Addr va)
{
    if (unified_)
        unified_->invalidatePage(asid, va);
    l14k_.invalidatePage(asid, va);
    l12m_.invalidatePage(asid, va);
    l11g_.invalidatePage(asid, va);
    l24k_.invalidatePage(asid, va);
    l22m_.invalidatePage(asid, va);
    ++*stInvlpg_;
}

void
TlbHierarchy::flushAll()
{
    if (unified_)
        unified_->flushAll();
    l14k_.flushAll();
    l12m_.flushAll();
    l11g_.flushAll();
    l24k_.flushAll();
    l22m_.flushAll();
}

void
TlbHierarchy::forEachValidEntry(
    const std::function<void(const char *level, const TlbEntry &)> &fn)
    const
{
    if (unified_) {
        unified_->forEachValidEntry(
            [&](const TlbEntry &e) { fn("l1.unified", e); });
    } else {
        l14k_.forEachValidEntry(
            [&](const TlbEntry &e) { fn("l1.4k", e); });
        l12m_.forEachValidEntry(
            [&](const TlbEntry &e) { fn("l1.2m", e); });
        l11g_.forEachValidEntry(
            [&](const TlbEntry &e) { fn("l1.1g", e); });
    }
    l24k_.forEachValidEntry(
        [&](const TlbEntry &e) { fn("l2.4k", e); });
    l22m_.forEachValidEntry(
        [&](const TlbEntry &e) { fn("l2.2m", e); });
}

} // namespace seesaw
