/**
 * @file
 * The two-level TLB hierarchy of Table II: split per-page-size L1 TLBs
 * (Intel style) backed by a unified L2 TLB and a hardware page walker.
 *
 * The hierarchy exposes the hook SEESAW builds on: a callback fired on
 * every 2MB L1 TLB fill, which the TFT uses to mark superpage regions
 * (Fig 5), and the superpage-TLB occupancy counter the out-of-order
 * scheduler policy reads (Section IV-B3).
 */

#ifndef SEESAW_TLB_TLB_HIERARCHY_HH
#define SEESAW_TLB_TLB_HIERARCHY_HH

#include <functional>
#include <memory>

#include "common/stats.hh"
#include "tlb/page_walker.hh"
#include "tlb/tlb.hh"
#include "tlb/unified_tlb.hh"

namespace seesaw {

/** Geometry/latency parameters of the TLB hierarchy. */
struct TlbHierarchyParams
{
    unsigned l1Entries4k = 128;
    unsigned l1Assoc4k = 4;
    unsigned l1Entries2m = 16;
    unsigned l1Assoc2m = 4;
    unsigned l1Entries1g = 4;
    unsigned l1Assoc1g = 4;

    unsigned l2Entries = 512;
    unsigned l2Assoc = 4;
    bool l2Holds2m = true; //!< modern STLBs also cache 2MB entries

    unsigned l1LatencyCycles = 1; //!< hidden under the VIPT L1 access
    unsigned l2LatencyCycles = 7;
    unsigned walkCyclesPerLevel = 12;

    /**
     * Refresh the 2MB-fill hook on 2MB L1 TLB *hits* as well as fills.
     * The paper's Fig 5 marks the TFT only on L1 TLB fills; with that
     * policy alone, a TFT entry displaced by a direct-mapped conflict
     * is never restored while its TLB entry stays resident, and hot
     * regions degrade to permanent TFT misses. The TLB hit signal
     * already carries the page size, so refreshing on hits is a
     * one-gate change; it is what Fig 13's >90% TFT coverage requires.
     */
    bool refreshOn2mHit = true;

    /**
     * Use one fully-associative L1 TLB shared across page sizes
     * (ARM/SPARC style) instead of Intel-style split L1 TLBs. The
     * paper's design works with either (Fig 4).
     */
    bool unifiedL1 = false;
    unsigned unifiedL1Entries = 64;

    /** Victim policy for every level; each structure decorrelates the
     *  Random seed with its own salt. */
    ReplacementParams replacement;

    /** ~Intel Sandybridge (Table II): split 128/16-entry L1s. */
    static TlbHierarchyParams sandybridge();

    /** ARM/SPARC-style fully-associative unified L1 TLB. */
    static TlbHierarchyParams unified(unsigned entries = 64);

    /** ~Intel Atom (Table II): 64/32-entry L1s, 512-entry L2. */
    static TlbHierarchyParams atom();
};

/** Outcome of a full hierarchy lookup. */
struct TlbLookupResult
{
    bool fault = false;  //!< no mapping exists (demand-page and retry)
    bool l1Hit = false;
    bool l2Hit = false;
    bool walked = false;
    Translation translation; //!< valid when !fault
    /** Cycles beyond the L1-TLB probe that VIPT hides under the cache
     *  access: L2 latency and/or the page walk. */
    unsigned penaltyCycles = 0;
};

/**
 * Split L1 TLBs + unified L2 TLB + page walker.
 */
class TlbHierarchy
{
  public:
    TlbHierarchy(const TlbHierarchyParams &params,
                 const PageTable &page_table);

    /** Translate @p va, filling TLB levels on the way. */
    TlbLookupResult lookup(Asid asid, Addr va);

    /** Register the TFT-marking hook: fired with a 2MB-aligned VA
     *  whenever a superpage translation (2MB, or the 2MB region of an
     *  accessed 1GB page) is filled into — or, with refreshOn2mHit,
     *  hits in — an L1 TLB. */
    void
    setOn2MBFill(std::function<void(Asid, Addr)> hook)
    {
        on2mFill_ = std::move(hook);
    }

    /** invlpg: drop the translation for @p va everywhere. */
    void invalidatePage(Asid asid, Addr va);

    /** Full flush (e.g., non-ASID context switch models). */
    void flushAll();

    /** Valid superpage entries at the L1 level (scheduler counter). */
    unsigned
    superpageL1ValidCount() const
    {
        return unified_ ? unified_->superpageValidCount()
                        : l12m_.validCount();
    }

    /** Superpage capacity at the L1 level. */
    unsigned
    superpageL1Capacity() const
    {
        return unified_ ? unified_->entries() : l12m_.entries();
    }

    /**
     * The §IV-B3 scheduler counter policy: are superpages plentiful
     * enough for the scheduler to assume the fast hit time? Split
     * TLBs use the paper's rule (>= a quarter of the dedicated
     * superpage TLB's entries valid); a unified TLB has no dedicated
     * structure, so the equivalent signal is superpage entries
     * holding at least a third of the valid pool.
     */
    bool
    superpagesAmple() const
    {
        if (unified_) {
            return unified_->superpageValidCount() * 3 >=
                   unified_->validCount();
        }
        // Either dedicated superpage TLB being at least a quarter
        // full signals plenty (a single resident 1GB entry already
        // covers a gigabyte of fast-path heap).
        return l12m_.validCount() * 4 >= l12m_.entries() ||
               l11g_.validCount() * 4 >= l11g_.entries();
    }

    const TlbHierarchyParams &params() const { return params_; }

    /** Visit every valid entry of every level; @p fn receives the
     *  level's name ("l1.4k", "l1.2m", "l1.1g", "l1.unified",
     *  "l2.4k", "l2.2m") and the entry (invariant audits). */
    void forEachValidEntry(
        const std::function<void(const char *level, const TlbEntry &)>
            &fn) const;

    const UnifiedTlb *unifiedL1Tlb() const { return unified_.get(); }
    const Tlb &l1Tlb4k() const { return l14k_; }
    const Tlb &l1Tlb2m() const { return l12m_; }
    const Tlb &l1Tlb1g() const { return l11g_; }
    const Tlb &l2Tlb4k() const { return l24k_; }
    const Tlb &l2Tlb2m() const { return l22m_; }
    const PageWalker &walker() const { return walker_; }

    /** Lookups that missed every L1 TLB and probed the L2. */
    std::uint64_t l2Lookups() const { return stL2Lookups_->count(); }

    /** invlpg operations serviced (shootdown receive side). */
    std::uint64_t invlpgs() const { return stInvlpg_->count(); }

    const StatGroup &stats() const { return stats_; }
    StatGroup &stats() { return stats_; }

  private:
    TlbHierarchyParams params_;
    Tlb l14k_;
    Tlb l12m_;
    Tlb l11g_;
    // The unified L2 is modelled as parallel per-size views sharing one
    // latency; capacity is split in proportion to typical occupancy.
    Tlb l24k_;
    Tlb l22m_;
    std::unique_ptr<UnifiedTlb> unified_; //!< replaces the split L1s
    PageWalker walker_;
    std::function<void(Asid, Addr)> on2mFill_;
    StatGroup stats_;

    // Hot-path stat handles (registered once; see common/stats.hh).
    StatScalar *stLookups_;
    StatScalar *stL1Hits_;
    StatScalar *stL2Lookups_;
    StatScalar *stL2Hits_;
    StatScalar *stWalks_;
    StatScalar *stFaults_;
    StatScalar *stInvlpg_;

    /** Fill the right L1 TLB (and maybe the TFT hook); @p va is the
     *  accessing address (needed to locate the 2MB region inside a
     *  1GB page). */
    void fillL1(Asid asid, const Translation &t, Addr va);

    /** Fill the L2 TLB when it holds this size. */
    void fillL2(Asid asid, const Translation &t);
};

} // namespace seesaw

#endif // SEESAW_TLB_TLB_HIERARCHY_HH
