#include "tlb/page_walker.hh"

namespace seesaw {

PageWalker::PageWalker(const PageTable &table, unsigned cycles_per_level)
    : table_(table), cyclesPerLevel_(cycles_per_level), stats_("walker")
{
}

std::optional<WalkResult>
PageWalker::walk(Asid asid, Addr va)
{
    ++stats_.scalar("walks");
    auto t = table_.translate(asid, va);
    if (!t) {
        ++stats_.scalar("faults");
        return std::nullopt;
    }
    WalkResult res;
    res.translation = *t;
    res.levels = PageTable::walkLevels(t->size);
    res.cycles = res.levels * cyclesPerLevel_;
    stats_.scalar("walk_cycles") += res.cycles;
    return res;
}

} // namespace seesaw
