#include "tlb/page_walker.hh"

namespace seesaw {

PageWalker::PageWalker(const PageTable &table, unsigned cycles_per_level)
    : table_(table), cyclesPerLevel_(cycles_per_level), stats_("walker"),
      stWalks_(&stats_.scalar("walks")),
      stFaults_(&stats_.scalar("faults")),
      stWalkCycles_(&stats_.scalar("walk_cycles"))
{
}

std::optional<WalkResult>
PageWalker::walk(Asid asid, Addr va)
{
    ++*stWalks_;
    auto t = table_.translate(asid, va);
    if (!t) {
        ++*stFaults_;
        return std::nullopt;
    }
    WalkResult res;
    res.translation = *t;
    res.levels = PageTable::walkLevels(t->size);
    res.cycles = res.levels * cyclesPerLevel_;
    *stWalkCycles_ += res.cycles;
    return res;
}

} // namespace seesaw
