#include "tlb/tlb.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace seesaw {

Tlb::Tlb(std::string name, unsigned entries, unsigned assoc,
         PageSize size)
    : name_(std::move(name)), entries_(entries), assoc_(assoc),
      size_(size), slots_(entries), stats_(name_),
      stLookups_(&stats_.scalar("lookups")),
      stHits_(&stats_.scalar("hits")),
      stMisses_(&stats_.scalar("misses")),
      stFills_(&stats_.scalar("fills")),
      stEvictions_(&stats_.scalar("evictions")),
      stInvalidations_(&stats_.scalar("invalidations"))
{
    SEESAW_ASSERT(entries_ > 0 && assoc_ > 0 && entries_ % assoc_ == 0,
                  "bad TLB geometry");
    numSets_ = entries_ / assoc_;
    SEESAW_ASSERT(numSets_ == 1 || isPowerOfTwo(numSets_),
                  "TLB set count must be a power of two");
}

TlbEntry *
Tlb::find(Asid asid, Addr vpn)
{
    const unsigned set = setOf(vpn);
    TlbEntry *base = &slots_[static_cast<std::size_t>(set) * assoc_];
    for (unsigned way = 0; way < assoc_; ++way) {
        TlbEntry &e = base[way];
        if (e.valid && e.asid == asid && e.vpn == vpn)
            return &e;
    }
    return nullptr;
}

const TlbEntry *
Tlb::find(Asid asid, Addr vpn) const
{
    return const_cast<Tlb *>(this)->find(asid, vpn);
}

std::optional<TlbEntry>
Tlb::lookup(Asid asid, Addr va)
{
    const TlbEntry *e = lookupEntry(asid, va);
    if (!e)
        return std::nullopt;
    return *e;
}

const TlbEntry *
Tlb::lookupEntry(Asid asid, Addr va)
{
    ++*stLookups_;
    TlbEntry *e = find(asid, vpnOf(va));
    if (!e) {
        ++*stMisses_;
        return nullptr;
    }
    ++*stHits_;
    e->lastUse = ++useClock_;
    return e;
}

std::optional<TlbEntry>
Tlb::peek(Asid asid, Addr va) const
{
    const TlbEntry *e = find(asid, vpnOf(va));
    if (!e)
        return std::nullopt;
    return *e;
}

void
Tlb::insert(Asid asid, Addr va, Addr pa_base)
{
    const Addr vpn = vpnOf(va);
    SEESAW_ASSERT(pa_base % pageBytes(size_) == 0,
                  "unaligned TLB fill");

    if (TlbEntry *existing = find(asid, vpn)) {
        existing->paBase = pa_base;
        existing->lastUse = ++useClock_;
        return;
    }

    const unsigned set = setOf(vpn);
    TlbEntry *base = &slots_[static_cast<std::size_t>(set) * assoc_];
    unsigned victim = 0;
    std::uint64_t oldest = ~std::uint64_t{0};
    for (unsigned way = 0; way < assoc_; ++way) {
        if (!base[way].valid) {
            victim = way;
            break;
        }
        if (base[way].lastUse < oldest) {
            oldest = base[way].lastUse;
            victim = way;
        }
    }

    if (base[victim].valid)
        ++*stEvictions_;
    else
        ++validCount_;
    base[victim] = TlbEntry{true, asid, vpn, pa_base, size_,
                            ++useClock_};
    ++*stFills_;
}

bool
Tlb::invalidatePage(Asid asid, Addr va)
{
    TlbEntry *e = find(asid, vpnOf(va));
    if (!e)
        return false;
    e->valid = false;
    --validCount_;
    ++*stInvalidations_;
    return true;
}

void
Tlb::flushAsid(Asid asid)
{
    for (auto &e : slots_) {
        if (e.valid && e.asid == asid) {
            e.valid = false;
            --validCount_;
        }
    }
}

void
Tlb::flushAll()
{
    for (auto &e : slots_)
        e.valid = false;
    validCount_ = 0;
}

unsigned
Tlb::validCount() const
{
    return validCount_;
}

void
Tlb::forEachValidEntry(
    const std::function<void(const TlbEntry &)> &fn) const
{
    for (const auto &e : slots_) {
        if (e.valid)
            fn(e);
    }
}

} // namespace seesaw
