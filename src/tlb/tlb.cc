#include "tlb/tlb.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace seesaw {

Tlb::Tlb(std::string name, unsigned entries, unsigned assoc,
         PageSize size)
    : name_(std::move(name)), entries_(entries), assoc_(assoc),
      size_(size), slots_(entries), stats_(name_)
{
    SEESAW_ASSERT(entries_ > 0 && assoc_ > 0 && entries_ % assoc_ == 0,
                  "bad TLB geometry");
    numSets_ = entries_ / assoc_;
    SEESAW_ASSERT(numSets_ == 1 || isPowerOfTwo(numSets_),
                  "TLB set count must be a power of two");
}

TlbEntry *
Tlb::find(Asid asid, Addr vpn)
{
    const unsigned set = setOf(vpn);
    TlbEntry *base = &slots_[static_cast<std::size_t>(set) * assoc_];
    for (unsigned way = 0; way < assoc_; ++way) {
        TlbEntry &e = base[way];
        if (e.valid && e.asid == asid && e.vpn == vpn)
            return &e;
    }
    return nullptr;
}

const TlbEntry *
Tlb::find(Asid asid, Addr vpn) const
{
    return const_cast<Tlb *>(this)->find(asid, vpn);
}

std::optional<TlbEntry>
Tlb::lookup(Asid asid, Addr va)
{
    ++stats_.scalar("lookups");
    TlbEntry *e = find(asid, vpnOf(va));
    if (!e) {
        ++stats_.scalar("misses");
        return std::nullopt;
    }
    ++stats_.scalar("hits");
    e->lastUse = ++useClock_;
    return *e;
}

std::optional<TlbEntry>
Tlb::peek(Asid asid, Addr va) const
{
    const TlbEntry *e = find(asid, vpnOf(va));
    if (!e)
        return std::nullopt;
    return *e;
}

void
Tlb::insert(Asid asid, Addr va, Addr pa_base)
{
    const Addr vpn = vpnOf(va);
    SEESAW_ASSERT(pa_base % pageBytes(size_) == 0,
                  "unaligned TLB fill");

    if (TlbEntry *existing = find(asid, vpn)) {
        existing->paBase = pa_base;
        existing->lastUse = ++useClock_;
        return;
    }

    const unsigned set = setOf(vpn);
    TlbEntry *base = &slots_[static_cast<std::size_t>(set) * assoc_];
    unsigned victim = 0;
    std::uint64_t oldest = ~std::uint64_t{0};
    for (unsigned way = 0; way < assoc_; ++way) {
        if (!base[way].valid) {
            victim = way;
            break;
        }
        if (base[way].lastUse < oldest) {
            oldest = base[way].lastUse;
            victim = way;
        }
    }

    if (base[victim].valid)
        ++stats_.scalar("evictions");
    base[victim] = TlbEntry{true, asid, vpn, pa_base, size_,
                            ++useClock_};
    ++stats_.scalar("fills");
}

bool
Tlb::invalidatePage(Asid asid, Addr va)
{
    TlbEntry *e = find(asid, vpnOf(va));
    if (!e)
        return false;
    e->valid = false;
    ++stats_.scalar("invalidations");
    return true;
}

void
Tlb::flushAsid(Asid asid)
{
    for (auto &e : slots_) {
        if (e.valid && e.asid == asid)
            e.valid = false;
    }
}

void
Tlb::flushAll()
{
    for (auto &e : slots_)
        e.valid = false;
}

unsigned
Tlb::validCount() const
{
    unsigned count = 0;
    for (const auto &e : slots_)
        count += e.valid ? 1 : 0;
    return count;
}

void
Tlb::forEachValidEntry(
    const std::function<void(const TlbEntry &)> &fn) const
{
    for (const auto &e : slots_) {
        if (e.valid)
            fn(e);
    }
}

} // namespace seesaw
