#include "tlb/tlb.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace seesaw {

Tlb::Tlb(std::string name, unsigned entries, unsigned assoc,
         PageSize size, ReplacementParams replacement)
    : name_(std::move(name)), entries_(entries), assoc_(assoc),
      size_(size), slots_(entries), stats_(name_),
      stLookups_(&stats_.scalar("lookups")),
      stHits_(&stats_.scalar("hits")),
      stMisses_(&stats_.scalar("misses")),
      stFills_(&stats_.scalar("fills")),
      stEvictions_(&stats_.scalar("evictions")),
      stInvalidations_(&stats_.scalar("invalidations"))
{
    SEESAW_ASSERT(entries_ > 0 && assoc_ > 0 && entries_ % assoc_ == 0,
                  "bad TLB geometry");
    numSets_ = entries_ / assoc_;
    SEESAW_ASSERT(numSets_ == 1 || isPowerOfTwo(numSets_),
                  "TLB set count must be a power of two");
    policy_.emplace(replacement, numSets_, assoc_);
}

std::size_t
Tlb::slotOf(const TlbEntry *e) const
{
    return static_cast<std::size_t>(e - slots_.data());
}

TlbEntry *
Tlb::find(Asid asid, Addr vpn)
{
    const unsigned set = setOf(vpn);
    TlbEntry *base = &slots_[static_cast<std::size_t>(set) * assoc_];
    for (unsigned way = 0; way < assoc_; ++way) {
        TlbEntry &e = base[way];
        if (e.valid && e.asid == asid && e.vpn == vpn)
            return &e;
    }
    return nullptr;
}

const TlbEntry *
Tlb::find(Asid asid, Addr vpn) const
{
    return const_cast<Tlb *>(this)->find(asid, vpn);
}

std::optional<TlbEntry>
Tlb::lookup(Asid asid, Addr va)
{
    const TlbEntry *e = lookupEntry(asid, va);
    if (!e)
        return std::nullopt;
    return *e;
}

const TlbEntry *
Tlb::lookupEntry(Asid asid, Addr va)
{
    ++*stLookups_;
    TlbEntry *e = find(asid, vpnOf(va));
    if (!e) {
        ++*stMisses_;
        return nullptr;
    }
    ++*stHits_;
    policy_->touchAt(slotOf(e));
    return e;
}

std::optional<TlbEntry>
Tlb::peek(Asid asid, Addr va) const
{
    const TlbEntry *e = find(asid, vpnOf(va));
    if (!e)
        return std::nullopt;
    return *e;
}

void
Tlb::insert(Asid asid, Addr va, Addr pa_base)
{
    const Addr vpn = vpnOf(va);
    SEESAW_ASSERT(pa_base % pageBytes(size_) == 0,
                  "unaligned TLB fill");

    if (TlbEntry *existing = find(asid, vpn)) {
        existing->paBase = pa_base;
        policy_->touchAt(slotOf(existing));
        return;
    }

    const unsigned set = setOf(vpn);
    TlbEntry *base = &slots_[static_cast<std::size_t>(set) * assoc_];
    const unsigned victim = policy_->victim(set, 0, assoc_);

    if (base[victim].valid)
        ++*stEvictions_;
    else
        ++validCount_;
    base[victim] = TlbEntry{true, asid, vpn, pa_base, size_};
    policy_->fill(set, victim);
    ++*stFills_;
}

bool
Tlb::invalidatePage(Asid asid, Addr va)
{
    TlbEntry *e = find(asid, vpnOf(va));
    if (!e)
        return false;
    e->valid = false;
    policy_->invalidateAt(slotOf(e));
    --validCount_;
    ++*stInvalidations_;
    return true;
}

void
Tlb::flushAsid(Asid asid)
{
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        TlbEntry &e = slots_[i];
        if (e.valid && e.asid == asid) {
            e.valid = false;
            policy_->invalidateAt(i);
            --validCount_;
        }
    }
}

void
Tlb::flushAll()
{
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        TlbEntry &e = slots_[i];
        if (e.valid) {
            e.valid = false;
            policy_->invalidateAt(i);
        }
    }
    validCount_ = 0;
}

unsigned
Tlb::validCount() const
{
    return validCount_;
}

void
Tlb::forEachValidEntry(
    const std::function<void(const TlbEntry &)> &fn) const
{
    for (const auto &e : slots_) {
        if (e.valid)
            fn(e);
    }
}

} // namespace seesaw
