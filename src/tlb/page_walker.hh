/**
 * @file
 * An x86-64 radix page-table walker cost model.
 *
 * A 4KB leaf needs 4 levels (PML4, PDPT, PD, PT); 2MB leaves stop at
 * the PD (3 levels) and 1GB leaves at the PDPT (2 levels). Upper
 * levels usually hit in the page-walk caches; we charge a per-level
 * latency that reflects that mix.
 */

#ifndef SEESAW_TLB_PAGE_WALKER_HH
#define SEESAW_TLB_PAGE_WALKER_HH

#include <optional>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/page_table.hh"

namespace seesaw {

/** Outcome of a page walk. */
struct WalkResult
{
    Translation translation;
    unsigned cycles = 0;   //!< total walk latency
    unsigned levels = 0;   //!< radix levels touched
};

/**
 * Walks a PageTable and reports latency.
 */
class PageWalker
{
  public:
    /**
     * @param table The OS page table to walk.
     * @param cycles_per_level Average latency per radix level
     *        (page-walk-cache hits keep this well under DRAM latency).
     */
    explicit PageWalker(const PageTable &table,
                        unsigned cycles_per_level = 12);

    /** Walk for @p va. @return nullopt when unmapped (page fault). */
    std::optional<WalkResult> walk(Asid asid, Addr va);

    unsigned cyclesPerLevel() const { return cyclesPerLevel_; }

    const StatGroup &stats() const { return stats_; }
    StatGroup &stats() { return stats_; }

  private:
    const PageTable &table_;
    unsigned cyclesPerLevel_;
    StatGroup stats_;
    StatScalar *stWalks_;
    StatScalar *stFaults_;
    StatScalar *stWalkCycles_;
};

} // namespace seesaw

#endif // SEESAW_TLB_PAGE_WALKER_HH
