#include "tlb/unified_tlb.hh"

#include "common/logging.hh"

namespace seesaw {

UnifiedTlb::UnifiedTlb(std::string name, unsigned entries,
                       ReplacementParams replacement)
    : name_(std::move(name)), entries_(entries), slots_(entries),
      stats_(name_), stLookups_(&stats_.scalar("lookups")),
      stHits_(&stats_.scalar("hits")),
      stMisses_(&stats_.scalar("misses")),
      stEvictions_(&stats_.scalar("evictions")),
      stFills_(&stats_.scalar("fills")),
      stInvalidations_(&stats_.scalar("invalidations"))
{
    SEESAW_ASSERT(entries_ > 0, "unified TLB needs entries");
    policy_.emplace(replacement, 1, entries_);
}

std::size_t
UnifiedTlb::slotOf(const TlbEntry *e) const
{
    return static_cast<std::size_t>(e - slots_.data());
}

bool
UnifiedTlb::covers(const TlbEntry &e, Asid asid, Addr va)
{
    if (!e.valid || e.asid != asid)
        return false;
    return (va >> pageOffsetBits(e.size)) == e.vpn;
}

TlbEntry *
UnifiedTlb::find(Asid asid, Addr va)
{
    for (auto &e : slots_) {
        if (covers(e, asid, va))
            return &e;
    }
    return nullptr;
}

const TlbEntry *
UnifiedTlb::find(Asid asid, Addr va) const
{
    return const_cast<UnifiedTlb *>(this)->find(asid, va);
}

std::optional<TlbEntry>
UnifiedTlb::lookup(Asid asid, Addr va)
{
    ++*stLookups_;
    if (TlbEntry *e = find(asid, va)) {
        policy_->touchAt(slotOf(e));
        ++*stHits_;
        return *e;
    }
    ++*stMisses_;
    return std::nullopt;
}

std::optional<TlbEntry>
UnifiedTlb::peek(Asid asid, Addr va) const
{
    if (const TlbEntry *e = find(asid, va))
        return *e;
    return std::nullopt;
}

void
UnifiedTlb::insert(Asid asid, Addr va_base, Addr pa_base, PageSize size)
{
    SEESAW_ASSERT(va_base % pageBytes(size) == 0, "unaligned va_base");
    SEESAW_ASSERT(pa_base % pageBytes(size) == 0, "unaligned pa_base");

    if (TlbEntry *existing = find(asid, va_base)) {
        // Refresh; a size change (promotion/splinter races are handled
        // by invlpg, but be safe) rewrites the entry.
        existing->vpn = va_base >> pageOffsetBits(size);
        existing->paBase = pa_base;
        existing->size = size;
        policy_->touchAt(slotOf(existing));
        return;
    }

    const unsigned way = policy_->victim(0, 0, entries_);
    TlbEntry *victim = &slots_[way];
    if (victim->valid)
        ++*stEvictions_;
    *victim = TlbEntry{true, asid, va_base >> pageOffsetBits(size),
                       pa_base, size};
    policy_->fill(0, way);
    ++*stFills_;
}

bool
UnifiedTlb::invalidatePage(Asid asid, Addr va)
{
    if (TlbEntry *e = find(asid, va)) {
        e->valid = false;
        policy_->invalidateAt(slotOf(e));
        ++*stInvalidations_;
        return true;
    }
    return false;
}

void
UnifiedTlb::flushAsid(Asid asid)
{
    for (auto &e : slots_) {
        if (e.valid && e.asid == asid) {
            e.valid = false;
            policy_->invalidateAt(slotOf(&e));
        }
    }
}

void
UnifiedTlb::flushAll()
{
    for (auto &e : slots_) {
        if (e.valid) {
            e.valid = false;
            policy_->invalidateAt(slotOf(&e));
        }
    }
}

unsigned
UnifiedTlb::validCount() const
{
    unsigned count = 0;
    for (const auto &e : slots_)
        count += e.valid ? 1 : 0;
    return count;
}

void
UnifiedTlb::forEachValidEntry(
    const std::function<void(const TlbEntry &)> &fn) const
{
    for (const auto &e : slots_) {
        if (e.valid)
            fn(e);
    }
}

unsigned
UnifiedTlb::superpageValidCount() const
{
    unsigned count = 0;
    for (const auto &e : slots_)
        count += (e.valid && isSuperpage(e.size)) ? 1 : 0;
    return count;
}

} // namespace seesaw
