/**
 * @file
 * A fully-associative L1 TLB holding translations of every page size
 * concurrently — the ARM/SPARC-style organisation the paper notes
 * SEESAW also supports ("amenable to both split TLB and unified TLB
 * configurations", Fig 4).
 *
 * Unlike the split per-size TLBs (tlb/tlb.hh), one entry pool is
 * shared: a superpage-heavy phase can fill the whole structure with
 * 2MB entries, and vice versa.
 */

#ifndef SEESAW_TLB_UNIFIED_TLB_HH
#define SEESAW_TLB_UNIFIED_TLB_HH

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "tlb/tlb.hh"

namespace seesaw {

/**
 * Fully-associative, multi-page-size TLB with a pluggable replacement
 * policy (LRU by default); the whole structure is one policy "set".
 */
class UnifiedTlb
{
  public:
    UnifiedTlb(std::string name, unsigned entries,
               ReplacementParams replacement = {});

    /** Probe for a translation of @p va at any page size. */
    std::optional<TlbEntry> lookup(Asid asid, Addr va);

    /** Non-mutating probe. */
    std::optional<TlbEntry> peek(Asid asid, Addr va) const;

    /** Install a translation of @p size (policy victim across ALL
     *  sizes — the shared-capacity property). */
    void insert(Asid asid, Addr va_base, Addr pa_base, PageSize size);

    /** invlpg: drop any entry covering @p va. @return hit? */
    bool invalidatePage(Asid asid, Addr va);

    void flushAsid(Asid asid);
    void flushAll();

    unsigned entries() const { return entries_; }
    unsigned validCount() const;

    /** Visit every valid entry (invariant audits, dumps). */
    void forEachValidEntry(
        const std::function<void(const TlbEntry &)> &fn) const;

    /** Valid entries caching superpage (2MB/1GB) translations — the
     *  §IV-B3 scheduler counter for unified configurations. */
    unsigned superpageValidCount() const;

    /** The victim-selection policy (invariant audits). */
    const ReplacementPolicy &replacementPolicy() const
    {
        return *policy_;
    }

    /** Valid entries displaced by fills. */
    std::uint64_t evictions() const { return stEvictions_->count(); }

    const StatGroup &stats() const { return stats_; }
    StatGroup &stats() { return stats_; }

  private:
    std::string name_;
    unsigned entries_;
    std::vector<TlbEntry> slots_;
    std::optional<ReplacementPolicy> policy_;
    StatGroup stats_;
    StatScalar *stLookups_;
    StatScalar *stHits_;
    StatScalar *stMisses_;
    StatScalar *stEvictions_;
    StatScalar *stFills_;
    StatScalar *stInvalidations_;

    /** @return The slot covering @p va, or nullptr. */
    TlbEntry *find(Asid asid, Addr va);
    const TlbEntry *find(Asid asid, Addr va) const;

    /** @return True when @p e covers @p va. */
    static bool covers(const TlbEntry &e, Asid asid, Addr va);

    /** Policy way index of @p e (the whole TLB is one set). */
    std::size_t slotOf(const TlbEntry *e) const;
};

} // namespace seesaw

#endif // SEESAW_TLB_UNIFIED_TLB_HH
