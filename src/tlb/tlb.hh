/**
 * @file
 * A set-associative (or fully-associative) TLB for one or more page
 * size classes, with ASID tags and a pluggable replacement policy
 * (LRU by default).
 */

#ifndef SEESAW_TLB_TLB_HH
#define SEESAW_TLB_TLB_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "cache/replacement.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace seesaw {

/** One TLB entry. */
struct TlbEntry
{
    bool valid = false;
    Asid asid = 0;
    Addr vpn = 0;     //!< va >> pageOffsetBits(size)
    Addr paBase = 0;  //!< physical base of the page
    PageSize size = PageSize::Base4KB;
};

/**
 * A TLB caching translations of exactly one page size class.
 *
 * Intel-style split L1 TLBs (Table II) instantiate one of these per
 * size; a unified structure (ARM/SPARC-style, or Intel's L2 STLB that
 * holds 4KB and 2MB entries) composes several via UnifiedTlb.
 */
class Tlb
{
  public:
    /**
     * @param name Statistic prefix.
     * @param entries Total entry count.
     * @param assoc Ways (entries == sets*assoc); pass entries for a
     *        fully-associative structure.
     * @param size The page size class cached here.
     * @param replacement Victim policy (default LRU).
     */
    Tlb(std::string name, unsigned entries, unsigned assoc,
        PageSize size, ReplacementParams replacement = {});

    /** Probe for the translation of @p va; touches the policy on
     *  hit. */
    std::optional<TlbEntry> lookup(Asid asid, Addr va);

    /** Hot-path probe: like lookup(), but returns a pointer into the
     *  slot array (nullptr on miss) instead of copying the entry into
     *  an optional. The pointer is valid until the next mutation. */
    const TlbEntry *lookupEntry(Asid asid, Addr va);

    /** Non-mutating probe. */
    std::optional<TlbEntry> peek(Asid asid, Addr va) const;

    /** Install a translation (policy victim within the set). */
    void insert(Asid asid, Addr va, Addr pa_base);

    /** Invalidate the entry covering @p va (invlpg). @return hit? */
    bool invalidatePage(Asid asid, Addr va);

    /** Drop every entry of @p asid. */
    void flushAsid(Asid asid);

    /** Drop everything. */
    void flushAll();

    /** Number of currently valid entries (scheduler counter, §IV-B3). */
    unsigned validCount() const;

    /** Visit every valid entry (invariant audits against the page
     *  table, dumps). */
    void forEachValidEntry(
        const std::function<void(const TlbEntry &)> &fn) const;

    PageSize pageSize() const { return size_; }
    unsigned entries() const { return entries_; }
    unsigned assoc() const { return assoc_; }
    unsigned numSets() const { return numSets_; }

    /** The victim-selection policy (invariant audits). */
    const ReplacementPolicy &replacementPolicy() const
    {
        return *policy_;
    }

    /** Valid entries displaced by fills. */
    std::uint64_t evictions() const { return stEvictions_->count(); }

    const StatGroup &stats() const { return stats_; }
    StatGroup &stats() { return stats_; }

  private:
    std::string name_;
    unsigned entries_;
    unsigned assoc_;
    unsigned numSets_;
    PageSize size_;
    std::vector<TlbEntry> slots_;
    std::optional<ReplacementPolicy> policy_;
    unsigned validCount_ = 0; //!< maintained incrementally (hot path)
    StatGroup stats_;

    // Hot-path stat handles, registered once at construction so the
    // per-access path never touches the string-keyed stat map.
    StatScalar *stLookups_;
    StatScalar *stHits_;
    StatScalar *stMisses_;
    StatScalar *stFills_;
    StatScalar *stEvictions_;
    StatScalar *stInvalidations_;

    Addr vpnOf(Addr va) const { return va >> pageOffsetBits(size_); }
    unsigned setOf(Addr vpn) const
    {
        return static_cast<unsigned>(vpn % numSets_);
    }
    TlbEntry *find(Asid asid, Addr vpn);
    const TlbEntry *find(Asid asid, Addr vpn) const;
    std::size_t slotOf(const TlbEntry *e) const;
};

} // namespace seesaw

#endif // SEESAW_TLB_TLB_HH
