#include "cache/replacement.hh"

#include "common/logging.hh"

namespace seesaw {

unsigned
selectLruVictim(const CacheLine *lines, unsigned begin, unsigned end)
{
    SEESAW_ASSERT(begin < end, "empty victim range");
    unsigned victim = begin;
    std::uint64_t oldest = ~std::uint64_t{0};
    for (unsigned way = begin; way < end; ++way) {
        if (!lines[way].valid)
            return way;
        if (lines[way].lastUse < oldest) {
            oldest = lines[way].lastUse;
            victim = way;
        }
    }
    return victim;
}

} // namespace seesaw
