#include "cache/replacement.hh"

#include "common/logging.hh"

namespace seesaw {

ReplacementPolicy::ReplacementPolicy(const ReplacementParams &params,
                                     unsigned num_sets, unsigned assoc)
    : kind_(params.kind), singleWay_(assoc == 1), numSets_(num_sets),
      assoc_(assoc),
      maxRrpv_((std::uint64_t{1} << params.rripBits) - 1),
      state_(static_cast<std::size_t>(num_sets) * assoc, 0),
      occupied_(static_cast<std::size_t>(num_sets) * assoc, 0),
      rng_(params.seed)
{
    SEESAW_ASSERT(num_sets > 0 && assoc > 0, "empty policy geometry");
    if (kind_ == ReplacementKind::Srrip) {
        SEESAW_ASSERT(params.rripBits >= 1 && params.rripBits <= 8,
                      "rripBits out of range");
    }
}

unsigned
ReplacementPolicy::victimSlow(std::size_t slot0, unsigned begin,
                              unsigned end)
{
    switch (kind_) {
      case ReplacementKind::Random:
        return begin +
               static_cast<unsigned>(rng_.nextBounded(end - begin));
      case ReplacementKind::Srrip:
        for (;;) {
            for (unsigned way = begin; way < end; ++way) {
                if (state_[slot0 + way] >= maxRrpv_)
                    return way;
            }
            for (unsigned way = begin; way < end; ++way)
                ++state_[slot0 + way];
        }
      default:
        break;
    }
    SEESAW_FATAL("unknown replacement kind");
}

void
ReplacementPolicy::auditSet(unsigned set, const AuditFail &fail) const
{
    switch (kind_) {
      case ReplacementKind::Lru:
      case ReplacementKind::Fifo: {
        const char *what =
            kind_ == ReplacementKind::Lru ? "LRU" : "FIFO";
        for (unsigned way = 0; way < assoc_; ++way) {
            if (!occupied_[slot(set, way)])
                continue;
            const std::uint64_t stamp = state_[slot(set, way)];
            if (stamp > clock_) {
                fail(way, std::string(what) + " timestamp " +
                              std::to_string(stamp) +
                              " exceeds use clock " +
                              std::to_string(clock_));
            }
            for (unsigned other = way + 1; other < assoc_; ++other) {
                if (occupied_[slot(set, other)] &&
                    state_[slot(set, other)] == stamp) {
                    fail(way, std::string("duplicate ") + what +
                                  " timestamp " +
                                  std::to_string(stamp) +
                                  " shared with way " +
                                  std::to_string(other));
                }
            }
        }
        return;
      }
      case ReplacementKind::Random:
        // Stateless: no invariant of its own.
        return;
      case ReplacementKind::Srrip:
        for (unsigned way = 0; way < assoc_; ++way) {
            if (occupied_[slot(set, way)] &&
                state_[slot(set, way)] > maxRrpv_) {
                fail(way,
                     "RRPV " +
                         std::to_string(state_[slot(set, way)]) +
                         " out of range (max " +
                         std::to_string(maxRrpv_) + ")");
            }
        }
        return;
    }
}

std::unique_ptr<ReplacementPolicy>
ReplacementPolicy::create(const ReplacementParams &params,
                          unsigned num_sets, unsigned assoc)
{
    return std::unique_ptr<ReplacementPolicy>(
        new ReplacementPolicy(params, num_sets, assoc));
}

} // namespace seesaw
