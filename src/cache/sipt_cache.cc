#include "cache/sipt_cache.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace seesaw {

SiptCache::SiptCache(const SiptConfig &config,
                     const LatencyTable &latency)
    : config_(config),
      tags_(config.sizeBytes, config.assoc, config.lineBytes, 1,
            config.replacement),
      hitCycles_(latency.sram().accessLatencyCycles(
          config.sizeBytes, config.assoc, config.freqGhz)),
      predictor_(config.predictorEntries),
      stats_("sipt"),
      stAccesses_(&stats_.scalar("accesses")),
      stHits_(&stats_.scalar("hits")),
      stMisses_(&stats_.scalar("misses")),
      stSpecCorrect_(&stats_.scalar("spec_correct")),
      stSpecWrong_(&stats_.scalar("spec_wrong"))
{
    // How many index bits exceed the 4KB page offset?
    const unsigned set_span_bits =
        log2Floor(tags_.numSets()) + log2Floor(config.lineBytes);
    SEESAW_ASSERT(set_span_bits > 12,
                  "SIPT needs more sets than VIPT allows; use a lower "
                  "associativity");
    specBits_ = set_span_bits - 12;
    SEESAW_ASSERT(config.predictorEntries > 0, "empty predictor");
}

unsigned
SiptCache::predictBits(Addr va) const
{
    const Addr vpn = va >> 12;
    const PredictorEntry &e =
        predictor_[vpn % config_.predictorEntries];
    if (e.valid && e.vpn == vpn)
        return e.bits;
    // Untrained: speculate identity (the VA's own bits) — correct for
    // superpages by construction.
    return extraBitsOf(va);
}

void
SiptCache::train(Addr va, unsigned pa_bits)
{
    const Addr vpn = va >> 12;
    PredictorEntry &e = predictor_[vpn % config_.predictorEntries];
    e.valid = true;
    e.vpn = vpn;
    e.bits = pa_bits;
}

L1AccessResult
SiptCache::access(const L1Access &req)
{
    L1AccessResult res;
    ++*stAccesses_;

    // Speculate the index; the TLB reveals the truth in parallel.
    const unsigned predicted = predictBits(req.va);
    const unsigned actual = extraBitsOf(req.pa);
    const bool correct = predicted == actual;
    if (correct)
        ++*stSpecCorrect_;
    else
        ++*stSpecWrong_;
    train(req.va, actual);

    // Lines live at their physical index; a wrong speculation reads
    // the wrong set first and replays at the right one (rollback).
    const TagLookup look = tags_.lookup(req.pa);
    res.hit = look.hit;
    res.waysRead = correct ? config_.assoc : 2 * config_.assoc;
    res.latencyCycles =
        correct ? hitCycles_
                : hitCycles_ + config_.replayPenaltyCycles;
    res.fastPath = correct;
    // The mispeculation is only discovered when the TLB result
    // arrives at tag-compare time: a late discovery, i.e., the full
    // squash-and-replay cost the SEESAW paper contrasts with its
    // guarantee-based TFT.
    res.lateDiscovery = !correct;

    if (look.hit) {
        ++*stHits_;
        res.wasPrefetched = look.wasPrefetched;
        if (req.type == AccessType::Write)
            tags_.lineAt(tags_.setIndex(req.pa), look.way).state =
                CoherenceState::Modified;
        return res;
    }

    ++*stMisses_;
    const auto state = req.type == AccessType::Write
                           ? CoherenceState::Modified
                           : CoherenceState::Exclusive;
    res.eviction = tags_.insert(req.pa, SetAssocCache::InsertScope::FullSet,
                                state, req.pageSize);
    res.installWays = config_.assoc;
    return res;
}

L1ProbeResult
SiptCache::probe(Addr pa, bool invalidating)
{
    L1ProbeResult res;
    // Physical index: probes go straight to the right (small) set.
    res.waysRead = config_.assoc;
    CacheLine *line = tags_.findLine(pa);
    if (!line)
        return res;
    res.hit = true;
    res.wasDirty = isDirtyState(line->state);
    if (invalidating) {
        // Route through the tag store so the replacement policy sees
        // the way free up.
        tags_.invalidate(pa);
    } else {
        line->state = res.wasDirty ? CoherenceState::Owned
                                   : CoherenceState::Shared;
    }
    return res;
}

unsigned
SiptCache::sweepRegion(Addr pa_base, std::uint64_t bytes)
{
    return tags_.sweepRegion(pa_base, bytes);
}

} // namespace seesaw
