#include "cache/set_assoc_cache.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace seesaw {

SetAssocCache::SetAssocCache(std::uint64_t size_bytes, unsigned assoc,
                             unsigned line_bytes,
                             unsigned num_partitions,
                             ReplacementParams replacement)
    : assoc_(assoc), lineBytes_(line_bytes),
      numPartitions_(num_partitions)
{
    SEESAW_ASSERT(isPowerOfTwo(assoc_), "assoc must be a power of two");
    SEESAW_ASSERT(isPowerOfTwo(lineBytes_),
                  "line size must be a power of two");
    SEESAW_ASSERT(isPowerOfTwo(numPartitions_) &&
                      assoc_ % numPartitions_ == 0,
                  "partitions must evenly divide the ways");
    lineBits_ = log2Floor(lineBytes_);

    const std::uint64_t lines = size_bytes / lineBytes_;
    SEESAW_ASSERT(lines % assoc_ == 0 && lines > 0, "bad geometry");
    numSets_ = static_cast<unsigned>(lines / assoc_);
    // Power-of-two set counts index by bit slicing (required for the
    // VIPT/SEESAW partition-bit layout); other counts (e.g., a 24MB
    // LLC) fall back to modulo indexing and cannot be partitioned.
    powerOfTwoSets_ = isPowerOfTwo(numSets_);
    SEESAW_ASSERT(powerOfTwoSets_ || numPartitions_ == 1,
                  "partitioned caches need power-of-two sets");
    setBits_ = powerOfTwoSets_ ? log2Floor(numSets_) : 0;
    partitionBits_ = log2Floor(numPartitions_);

    lines_.resize(static_cast<std::size_t>(numSets_) * assoc_);
    policy_.emplace(replacement, numSets_, assoc_);
}

unsigned
SetAssocCache::setIndex(Addr addr) const
{
    if (!powerOfTwoSets_)
        return static_cast<unsigned>((addr >> lineBits_) % numSets_);
    return static_cast<unsigned>(
        bits(addr, lineBits_ + setBits_ - 1, lineBits_));
}

unsigned
SetAssocCache::partitionIndex(Addr addr) const
{
    if (numPartitions_ == 1)
        return 0;
    const unsigned lo = lineBits_ + setBits_;
    return static_cast<unsigned>(bits(addr, lo + partitionBits_ - 1, lo));
}

TagLookup
SetAssocCache::searchRange(Addr line_addr, unsigned set, unsigned begin,
                           unsigned end, bool touch)
{
    const std::size_t slot0 = static_cast<std::size_t>(set) * assoc_;
    CacheLine *base = &lines_[slot0];
    for (unsigned way = begin; way < end; ++way) {
        if (base[way].valid && base[way].lineAddr == line_addr) {
            TagLookup res{true, false, way};
            if (touch) {
                policy_->touchAt(slot0 + way);
                if (base[way].prefetched) {
                    res.wasPrefetched = true;
                    base[way].prefetched = false;
                }
            }
            return res;
        }
    }
    return TagLookup{false, false, 0};
}

TagLookup
SetAssocCache::lookup(Addr pa)
{
    return searchRange(lineAddrOf(pa), setIndex(pa), 0, assoc_, true);
}

TagLookup
SetAssocCache::lookupPartition(Addr pa, unsigned partition)
{
    SEESAW_ASSERT(partition < numPartitions_, "partition out of range");
    const unsigned begin = partitionBase(partition);
    return searchRange(lineAddrOf(pa), setIndex(pa), begin,
                       begin + waysPerPartition(), true);
}

TagLookup
SetAssocCache::peek(Addr pa) const
{
    const Addr line_addr = pa >> lineBits_;
    const unsigned set = setIndex(pa);
    const CacheLine *base = setBase(set);
    for (unsigned way = 0; way < assoc_; ++way) {
        if (base[way].valid && base[way].lineAddr == line_addr)
            return TagLookup{true, false, way};
    }
    return TagLookup{false, false, 0};
}

Eviction
SetAssocCache::insert(Addr pa, InsertScope scope, CoherenceState state,
                      PageSize page_size, bool prefetched)
{
    const unsigned set = setIndex(pa);
    CacheLine *base = setBase(set);

    unsigned begin = 0, end = assoc_;
    if (scope == InsertScope::Partition) {
        begin = partitionBase(partitionIndex(pa));
        end = begin + waysPerPartition();
    }

    const unsigned victim = policy_->victim(set, begin, end);
    Eviction ev;
    if (base[victim].valid) {
        ev.valid = true;
        ev.lineAddr = base[victim].lineAddr;
        ev.state = base[victim].state;
        ev.pageSize = base[victim].pageSize;
        ev.prefetched = base[victim].prefetched;
    }

    base[victim].valid = true;
    base[victim].lineAddr = lineAddrOf(pa);
    base[victim].state = state;
    base[victim].prefetched = prefetched;
    base[victim].pageSize = page_size;
    policy_->fill(set, victim);
    return ev;
}

std::optional<CoherenceState>
SetAssocCache::invalidate(Addr pa)
{
    const unsigned set = setIndex(pa);
    CacheLine *base = setBase(set);
    const Addr line_addr = lineAddrOf(pa);
    for (unsigned way = 0; way < assoc_; ++way) {
        if (base[way].valid && base[way].lineAddr == line_addr) {
            const CoherenceState prev = base[way].state;
            base[way].valid = false;
            base[way].state = CoherenceState::Invalid;
            base[way].prefetched = false;
            policy_->invalidate(set, way);
            return prev;
        }
    }
    return std::nullopt;
}

CacheLine *
SetAssocCache::findLine(Addr pa)
{
    const Addr line_addr = lineAddrOf(pa);
    CacheLine *base = setBase(setIndex(pa));
    for (unsigned way = 0; way < assoc_; ++way) {
        if (base[way].valid && base[way].lineAddr == line_addr)
            return &base[way];
    }
    return nullptr;
}

const CacheLine *
SetAssocCache::findLine(Addr pa) const
{
    const Addr line_addr = pa >> lineBits_;
    const CacheLine *base = setBase(setIndex(pa));
    for (unsigned way = 0; way < assoc_; ++way) {
        if (base[way].valid && base[way].lineAddr == line_addr)
            return &base[way];
    }
    return nullptr;
}

unsigned
SetAssocCache::sweepRegion(Addr pa_base, std::uint64_t bytes)
{
    const Addr lo = pa_base >> lineBits_;
    const Addr hi = (pa_base + bytes) >> lineBits_;
    unsigned evicted = 0;
    for (unsigned set = 0; set < numSets_; ++set) {
        CacheLine *base = setBase(set);
        for (unsigned way = 0; way < assoc_; ++way) {
            CacheLine &line = base[way];
            if (line.valid && line.lineAddr >= lo &&
                line.lineAddr < hi) {
                line.valid = false;
                line.state = CoherenceState::Invalid;
                line.prefetched = false;
                policy_->invalidate(set, way);
                ++evicted;
            }
        }
    }
    return evicted;
}

void
SetAssocCache::forEachValidLine(
    const std::function<void(const CacheLine &)> &fn) const
{
    for (const auto &line : lines_) {
        if (line.valid)
            fn(line);
    }
}

unsigned
SetAssocCache::validLines() const
{
    unsigned count = 0;
    for (const auto &line : lines_)
        count += line.valid ? 1 : 0;
    return count;
}

bool
SetAssocCache::checkPlacementInvariant() const
{
    for (unsigned set = 0; set < numSets_; ++set) {
        const CacheLine *base = setBase(set);
        for (unsigned way = 0; way < assoc_; ++way) {
            if (!base[way].valid)
                continue;
            const Addr pa = base[way].lineAddr << lineBits_;
            if (partitionIndex(pa) != way / waysPerPartition())
                return false;
        }
    }
    return true;
}

} // namespace seesaw
