/**
 * @file
 * The abstract L1 data-cache interface shared by the baseline VIPT
 * cache, the PIPT alternative, and the SEESAW cache.
 *
 * Timing contract: access() reports the L1 lookup latency and how many
 * ways were read (for energy); on a miss it installs the line (the
 * caller is responsible for charging the outer-hierarchy fetch) and
 * reports any displaced dirty line for write-back accounting.
 */

#ifndef SEESAW_CACHE_L1_CACHE_HH
#define SEESAW_CACHE_L1_CACHE_HH

#include "cache/set_assoc_cache.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace seesaw {

/** One CPU-side L1 access. */
struct L1Access
{
    Addr va = 0;
    Addr pa = 0;
    PageSize pageSize = PageSize::Base4KB;
    AccessType type = AccessType::Read;

    /** SEESAW only: the TFT decision probed *before* the TLB lookup
     *  could refresh the entry — hardware probes the TFT and the L1
     *  TLBs in parallel, so the cache must not see a TFT state newer
     *  than the probe. -1 = not pre-probed (the cache probes itself;
     *  fine for standalone use). */
    int tftProbe = -1;
};

/** Outcome of a CPU-side L1 access. */
struct L1AccessResult
{
    bool hit = false;
    unsigned latencyCycles = 0; //!< lookup latency (hit, or to detect miss)
    unsigned waysRead = 0;      //!< data/tag ways energised
    bool fastPath = false;      //!< finished at fastHitCycles()
    bool tftHit = false;        //!< SEESAW only
    bool wpUsed = false;        //!< way predictor consulted
    bool wpCorrect = false;     //!< way predictor was right

    /** True when the core learns the final latency late (at tag
     *  compare: misses, way-predictor mispredicts). TFT-signalled slow
     *  hits are discovered within the first cycle — the scheduler can
     *  cancel the fast wakeup with a bubble instead of a full
     *  squash-and-replay. */
    bool lateDiscovery = false;
    bool wasPrefetched = false; //!< hit consumed a prefetched line
    Eviction eviction;          //!< line displaced by the miss fill
    unsigned installWays = 0;   //!< ways tracked by replacement on fill
};

/** Outcome of a coherence probe. */
struct L1ProbeResult
{
    bool hit = false;
    unsigned waysRead = 0;
    bool wasDirty = false; //!< probe found a dirty (M/O) line
};

/**
 * Abstract L1 data cache.
 */
class L1Cache
{
  public:
    virtual ~L1Cache() = default;

    /** Perform one CPU access; installs the line on a miss. */
    virtual L1AccessResult access(const L1Access &req) = 0;

    /**
     * Coherence probe by physical address.
     * @param pa Probed address.
     * @param invalidating True for invalidation probes (line dropped),
     *        false for read/downgrade probes.
     */
    virtual L1ProbeResult probe(Addr pa, bool invalidating) = 0;

    /** Slow (baseline) hit latency the scheduler may assume. */
    virtual unsigned baseHitCycles() const = 0;

    /** Fast hit latency (equals baseHitCycles for non-SEESAW caches). */
    virtual unsigned fastHitCycles() const = 0;

    /** Evict all lines in [pa_base, pa_base+bytes): promotion sweep. */
    virtual unsigned sweepRegion(Addr pa_base, std::uint64_t bytes) = 0;

    /**
     * Install @p pa speculatively on behalf of a prefetch: a
     * demand-like fill tagged as prefetched. The caller has already
     * checked residency and legality. SEESAW overrides this to force
     * the PA-named partition so speculative lines never violate
     * partition placement.
     * @return A snapshot of the displaced line, if any.
     */
    virtual Eviction
    prefetchFill(Addr pa, PageSize page_size)
    {
        return tags().insert(pa, SetAssocCache::InsertScope::FullSet,
                             CoherenceState::Exclusive, page_size,
                             /*prefetched=*/true);
    }

    /** The underlying tag store (tests and directory bookkeeping). */
    virtual const SetAssocCache &tags() const = 0;
    virtual SetAssocCache &tags() = 0;

    /** Per-cache statistics. */
    virtual const StatGroup &stats() const = 0;
    virtual StatGroup &stats() = 0;
};

} // namespace seesaw

#endif // SEESAW_CACHE_L1_CACHE_HH
