/**
 * @file
 * A generic set-associative tag store with optional way partitioning.
 *
 * This is the structural substrate shared by the baseline VIPT/PIPT
 * caches and the SEESAW cache. It models tags, MOESI line state and LRU
 * recency; timing and energy live in the L1 wrappers so the same store
 * can back Fig 2a's pure miss-rate sweeps.
 */

#ifndef SEESAW_CACHE_SET_ASSOC_CACHE_HH
#define SEESAW_CACHE_SET_ASSOC_CACHE_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "cache/replacement.hh"
#include "common/types.hh"

namespace seesaw {

/** Result of a tag-store search. */
struct TagLookup
{
    bool hit = false;
    unsigned way = 0; //!< valid when hit
};

/** A line pushed out by an insertion. */
struct Eviction
{
    bool valid = false;    //!< an actual line was displaced
    Addr lineAddr = 0;     //!< line address (<< lineBits for bytes)
    bool dirty = false;    //!< requires write-back
};

/**
 * Set-associative tag store. Ways may be grouped into equal
 * partitions; searches and victim selection can be scoped to one
 * partition (SEESAW) or span the whole set (traditional VIPT).
 */
class SetAssocCache
{
  public:
    /**
     * @param size_bytes Total capacity.
     * @param assoc Ways per set (power of two).
     * @param line_bytes Line size (default 64B).
     * @param num_partitions Way groups per set (1 = unpartitioned).
     */
    SetAssocCache(std::uint64_t size_bytes, unsigned assoc,
                  unsigned line_bytes = 64, unsigned num_partitions = 1);

    /** @name Geometry. */
    /// @{
    unsigned numSets() const { return numSets_; }
    unsigned assoc() const { return assoc_; }
    unsigned lineBytes() const { return lineBytes_; }
    unsigned numPartitions() const { return numPartitions_; }
    unsigned waysPerPartition() const { return assoc_ / numPartitions_; }
    std::uint64_t sizeBytes() const
    {
        return static_cast<std::uint64_t>(numSets_) * assoc_ *
               lineBytes_;
    }
    /// @}

    /** Set index of an address: bits immediately above the byte
     *  offset. (For 64-set, 64B-line caches these lie inside the 4KB
     *  page offset, so VA and PA agree — the VIPT property.) */
    unsigned setIndex(Addr addr) const;

    /** Partition index of an address: the bits immediately above the
     *  set index (bit 12 upward for 64-set, 64B-line caches). */
    unsigned partitionIndex(Addr addr) const;

    /** Lowest address bit used as partition index. */
    unsigned partitionLowBit() const { return lineBits_ + setBits_; }

    /** Search all ways of the set for @p pa; updates LRU on hit. */
    TagLookup lookup(Addr pa);

    /** Search only @p partition's ways; updates LRU on hit. */
    TagLookup lookupPartition(Addr pa, unsigned partition);

    /** Non-mutating full-set search (no LRU update). */
    TagLookup peek(Addr pa) const;

    /** Where a victim may be drawn from on insertion. */
    enum class InsertScope : std::uint8_t {
        Partition, //!< the partition selected by the PA's partition bits
        FullSet,   //!< any way in the set (global LRU)
    };

    /**
     * Install the line for @p pa (must not already be present unless
     * duplicates are tolerated by the caller), selecting an LRU victim
     * within @p scope. The new line starts in @p state.
     * @return The displaced line, if any.
     */
    Eviction insert(Addr pa, InsertScope scope, CoherenceState state,
                    PageSize page_size);

    /** Invalidate the line holding @p pa. @return Its pre-state. */
    std::optional<CoherenceState> invalidate(Addr pa);

    /** Mutable access to the line holding @p pa (coherence FSM). */
    CacheLine *findLine(Addr pa);
    const CacheLine *findLine(Addr pa) const;

    /**
     * Evict every line whose address falls within
     * [pa_base, pa_base + bytes) — the promotion sweep of §IV-C2.
     * @return Number of lines evicted.
     */
    unsigned sweepRegion(Addr pa_base, std::uint64_t bytes);

    /** Count of currently valid lines. */
    unsigned validLines() const;

    /** Direct line access by geometry (invariant audits, tests). */
    const CacheLine &
    lineAt(unsigned set, unsigned way) const
    {
        return setBase(set)[way];
    }

    /** Current LRU clock; no line's lastUse may exceed it. */
    std::uint64_t useClock() const { return useClock_; }

    /** Visit every valid line (coherence invariant checks, dumps). */
    void forEachValidLine(
        const std::function<void(const CacheLine &)> &fn) const;

    /**
     * Verify the SEESAW placement invariant: every valid line sits in
     * the partition named by its own physical address.
     * @return True when the invariant holds (always true under the
     * `4way` insertion policy; violable under `4way-8way`).
     */
    bool checkPlacementInvariant() const;

    /** Line address (addr >> lineBits) of @p pa. */
    Addr lineAddrOf(Addr pa) const { return pa >> lineBits_; }

    /** First way of @p partition within a set. */
    unsigned
    partitionBase(unsigned partition) const
    {
        return partition * waysPerPartition();
    }

  private:
    unsigned assoc_;
    unsigned lineBytes_;
    unsigned lineBits_;
    unsigned numSets_;
    unsigned setBits_;
    bool powerOfTwoSets_ = true;
    unsigned numPartitions_;
    unsigned partitionBits_;
    std::vector<CacheLine> lines_;
    std::uint64_t useClock_ = 0;

    CacheLine *setBase(unsigned set) { return &lines_[set * assoc_]; }
    const CacheLine *
    setBase(unsigned set) const
    {
        return &lines_[set * assoc_];
    }

    TagLookup searchRange(Addr line_addr, unsigned set, unsigned begin,
                          unsigned end, bool touch);
};

} // namespace seesaw

#endif // SEESAW_CACHE_SET_ASSOC_CACHE_HH
