/**
 * @file
 * A generic set-associative tag store with optional way partitioning.
 *
 * This is the structural substrate shared by the baseline VIPT/PIPT
 * caches and the SEESAW cache. It models tags and MOESI line state;
 * victim side-state lives in a pluggable ReplacementPolicy, and timing
 * and energy live in the L1 wrappers so the same store can back
 * Fig 2a's pure miss-rate sweeps.
 */

#ifndef SEESAW_CACHE_SET_ASSOC_CACHE_HH
#define SEESAW_CACHE_SET_ASSOC_CACHE_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "cache/replacement.hh"
#include "common/types.hh"

namespace seesaw {

/** Result of a tag-store search. */
struct TagLookup
{
    // Field order keeps the struct 8 bytes so it returns in one
    // register; a third eightbyte would spill through the stack on
    // every probe (measurable on the l1_probe hot loop).
    bool hit = false;
    bool wasPrefetched = false; //!< hit consumed a prefetched line
    unsigned way = 0;           //!< valid when hit
};

/**
 * A line pushed out by an insertion: a full snapshot of the victim,
 * taken before the insert overwrites it, so call sites never have to
 * re-read the line.
 */
struct Eviction
{
    bool valid = false; //!< an actual line was displaced
    Addr lineAddr = 0;  //!< line address (<< lineBits for bytes)
    CoherenceState state = CoherenceState::Invalid;
    PageSize pageSize = PageSize::Base4KB;
    bool prefetched = false; //!< victim was a never-demanded prefetch

    /** @return True when the victim requires a write-back. */
    bool dirty() const { return isDirtyState(state); }
};

/**
 * Set-associative tag store. Ways may be grouped into equal
 * partitions; searches and victim selection can be scoped to one
 * partition (SEESAW) or span the whole set (traditional VIPT).
 */
class SetAssocCache
{
  public:
    /**
     * @param size_bytes Total capacity.
     * @param assoc Ways per set (power of two).
     * @param line_bytes Line size (default 64B).
     * @param num_partitions Way groups per set (1 = unpartitioned).
     * @param replacement Victim-selection policy (default LRU).
     */
    SetAssocCache(std::uint64_t size_bytes, unsigned assoc,
                  unsigned line_bytes = 64, unsigned num_partitions = 1,
                  ReplacementParams replacement = {});

    /** @name Geometry. */
    /// @{
    unsigned numSets() const { return numSets_; }
    unsigned assoc() const { return assoc_; }
    unsigned lineBytes() const { return lineBytes_; }
    unsigned numPartitions() const { return numPartitions_; }
    unsigned waysPerPartition() const { return assoc_ / numPartitions_; }
    std::uint64_t sizeBytes() const
    {
        return static_cast<std::uint64_t>(numSets_) * assoc_ *
               lineBytes_;
    }
    /// @}

    /** Set index of an address: bits immediately above the byte
     *  offset. (For 64-set, 64B-line caches these lie inside the 4KB
     *  page offset, so VA and PA agree — the VIPT property.) */
    unsigned setIndex(Addr addr) const;

    /** Partition index of an address: the bits immediately above the
     *  set index (bit 12 upward for 64-set, 64B-line caches). */
    unsigned partitionIndex(Addr addr) const;

    /** Lowest address bit used as partition index. */
    unsigned partitionLowBit() const { return lineBits_ + setBits_; }

    /** Search all ways of the set for @p pa; touches the policy on a
     *  hit (and consumes the line's prefetched mark). */
    TagLookup lookup(Addr pa);

    /** Search only @p partition's ways; touches the policy on hit. */
    TagLookup lookupPartition(Addr pa, unsigned partition);

    /** Non-mutating full-set search (no policy update). */
    TagLookup peek(Addr pa) const;

    /** Where a victim may be drawn from on insertion. */
    enum class InsertScope : std::uint8_t {
        Partition, //!< the partition selected by the PA's partition bits
        FullSet,   //!< any way in the set (set-wide victims)
    };

    /**
     * Install the line for @p pa (must not already be present unless
     * duplicates are tolerated by the caller), drawing a policy victim
     * within @p scope. The new line starts in @p state; @p prefetched
     * marks a speculative install that no demand access has touched.
     * @return A snapshot of the displaced line, if any.
     */
    Eviction insert(Addr pa, InsertScope scope, CoherenceState state,
                    PageSize page_size, bool prefetched = false);

    /** Invalidate the line holding @p pa. @return Its pre-state. */
    std::optional<CoherenceState> invalidate(Addr pa);

    /** Mutable access to the line holding @p pa (coherence FSM). */
    CacheLine *findLine(Addr pa);
    const CacheLine *findLine(Addr pa) const;

    /**
     * Evict every line whose address falls within
     * [pa_base, pa_base + bytes) — the promotion sweep of §IV-C2.
     * @return Number of lines evicted.
     */
    unsigned sweepRegion(Addr pa_base, std::uint64_t bytes);

    /** Count of currently valid lines. */
    unsigned validLines() const;

    /** Direct line access by geometry (invariant audits, tests). */
    const CacheLine &
    lineAt(unsigned set, unsigned way) const
    {
        return setBase(set)[way];
    }

    /** Mutable line access by geometry: the L1 wrappers' hit paths
     *  update coherence state through the (set, way) a lookup already
     *  resolved instead of re-scanning the set. */
    CacheLine &
    lineAt(unsigned set, unsigned way)
    {
        return setBase(set)[way];
    }

    /** The replacement policy owning this store's victim side-state. */
    ReplacementPolicy &replacementPolicy() { return *policy_; }
    const ReplacementPolicy &
    replacementPolicy() const
    {
        return *policy_;
    }

    /** Visit every valid line (coherence invariant checks, dumps). */
    void forEachValidLine(
        const std::function<void(const CacheLine &)> &fn) const;

    /**
     * Verify the SEESAW placement invariant: every valid line sits in
     * the partition named by its own physical address.
     * @return True when the invariant holds (always true under the
     * `4way` insertion policy; violable under `4way-8way`).
     */
    bool checkPlacementInvariant() const;

    /** Line address (addr >> lineBits) of @p pa. */
    Addr lineAddrOf(Addr pa) const { return pa >> lineBits_; }

    /** First way of @p partition within a set. */
    unsigned
    partitionBase(unsigned partition) const
    {
        return partition * waysPerPartition();
    }

  private:
    unsigned assoc_;
    unsigned lineBytes_;
    unsigned lineBits_;
    unsigned numSets_;
    unsigned setBits_;
    bool powerOfTwoSets_ = true;
    unsigned numPartitions_;
    unsigned partitionBits_;
    std::vector<CacheLine> lines_;
    std::optional<ReplacementPolicy> policy_;

    CacheLine *setBase(unsigned set) { return &lines_[set * assoc_]; }
    const CacheLine *
    setBase(unsigned set) const
    {
        return &lines_[set * assoc_];
    }

    TagLookup searchRange(Addr line_addr, unsigned set, unsigned begin,
                          unsigned end, bool touch);
};

} // namespace seesaw

#endif // SEESAW_CACHE_SET_ASSOC_CACHE_HH
