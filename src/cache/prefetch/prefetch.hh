/**
 * @file
 * L1 prefetch engines: none, next-line, and a stride/stream prefetcher
 * with across-page tracking.
 *
 * Engines observe the demand VA stream and emit candidate VAs only —
 * they never translate. The issuing layer (CoreComplex) applies the
 * SEESAW legality rule: a candidate is issued only when it falls
 * inside the page backing the triggering access, so a prefetch may
 * cross a 4KB frontier exactly when a superpage translation covers
 * both sides (the partition named by VA bit 12 then still matches the
 * PA's partition). Candidates outside the page are dropped and counted
 * as illegal crossings.
 */

#ifndef SEESAW_CACHE_PREFETCH_PREFETCH_HH
#define SEESAW_CACHE_PREFETCH_PREFETCH_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"

namespace seesaw {

/** Prefetch engine selection. */
enum class PrefetchKind : std::uint8_t {
    None,     //!< no prefetching (the pinned default)
    NextLine, //!< sequential next-N-lines on demand misses
    Stride,   //!< stream table tracking strides across page frontiers
};

/** Prefetch configuration, threaded through SystemConfig. */
struct PrefetchParams
{
    PrefetchKind kind = PrefetchKind::None;
    unsigned degree = 1;        //!< candidates emitted per trigger
    unsigned tableEntries = 64; //!< stream-table entries (Stride)
};

/**
 * A per-core prefetch engine. Purely VA-driven and deterministic: the
 * candidate sequence is a function of the observed access stream
 * alone, so one-pass and serial execution see identical prefetches.
 */
class PrefetchEngine
{
  public:
    virtual ~PrefetchEngine() = default;

    /** Build the engine selected by @p params; nullptr for None. */
    static std::unique_ptr<PrefetchEngine>
    create(const PrefetchParams &params, unsigned line_bytes);

    PrefetchKind kind() const { return kind_; }

    /**
     * Observe a demand access at @p va (@p miss when the L1 missed)
     * and append line-aligned candidate VAs to @p out.
     */
    virtual void observe(Addr va, bool miss,
                         std::vector<Addr> &out) = 0;

  protected:
    PrefetchEngine(PrefetchKind kind, unsigned line_bytes)
        : kind_(kind), lineBytes_(line_bytes)
    {}

    Addr
    lineAlign(Addr va) const
    {
        return va & ~static_cast<Addr>(lineBytes_ - 1);
    }

    PrefetchKind kind_;
    unsigned lineBytes_;
};

} // namespace seesaw

#endif // SEESAW_CACHE_PREFETCH_PREFETCH_HH
