#include "cache/prefetch/prefetch.hh"

#include <cstdlib>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace seesaw {

namespace {

/** Next-N-lines on every demand miss. */
class NextLinePrefetcher final : public PrefetchEngine
{
  public:
    NextLinePrefetcher(unsigned line_bytes, unsigned degree)
        : PrefetchEngine(PrefetchKind::NextLine, line_bytes),
          degree_(degree)
    {}

    void
    observe(Addr va, bool miss, std::vector<Addr> &out) override
    {
        if (!miss)
            return;
        const Addr line = lineAlign(va);
        for (unsigned k = 1; k <= degree_; ++k)
            out.push_back(line + static_cast<Addr>(k) * lineBytes_);
    }

  private:
    unsigned degree_;
};

/**
 * Stride prefetcher over a small stream table. Without per-reference
 * PCs the table is keyed by locality instead: an access trains the
 * entry whose last address is nearest (within a 2MB window), so a
 * stream keeps its entry as it walks across 4KB page frontiers — the
 * across-page tracking the legality rule is exercised by. Entries are
 * LRU-replaced; everything is a pure function of the access stream.
 */
class StridePrefetcher final : public PrefetchEngine
{
  public:
    StridePrefetcher(unsigned line_bytes, unsigned degree,
                     unsigned table_entries)
        : PrefetchEngine(PrefetchKind::Stride, line_bytes),
          degree_(degree), table_(table_entries)
    {
        SEESAW_ASSERT(table_entries > 0, "empty stream table");
    }

    void
    observe(Addr va, bool, std::vector<Addr> &out) override
    {
        StreamEntry *entry = match(va);
        if (!entry) {
            entry = allocate();
            entry->valid = true;
            entry->lastVa = va;
            entry->stride = 0;
            entry->confidence = 0;
            entry->lastUse = ++clock_;
            return;
        }
        const std::int64_t delta =
            static_cast<std::int64_t>(va) -
            static_cast<std::int64_t>(entry->lastVa);
        if (delta == 0) {
            entry->lastUse = ++clock_;
            return;
        }
        if (delta == entry->stride) {
            if (entry->confidence < 3)
                ++entry->confidence;
        } else {
            entry->stride = delta;
            entry->confidence = 1;
        }
        entry->lastVa = va;
        entry->lastUse = ++clock_;

        if (entry->confidence >= 2) {
            for (unsigned k = 1; k <= degree_; ++k) {
                const std::int64_t target =
                    static_cast<std::int64_t>(va) +
                    entry->stride * static_cast<std::int64_t>(k);
                if (target < 0)
                    break;
                const Addr line =
                    lineAlign(static_cast<Addr>(target));
                if (line != lineAlign(va))
                    out.push_back(line);
            }
        }
    }

  private:
    struct StreamEntry
    {
        bool valid = false;
        Addr lastVa = 0;
        std::int64_t stride = 0;
        unsigned confidence = 0;
        std::uint64_t lastUse = 0;
    };

    /** Nearest tracked stream within the window, ties to the lowest
     *  index (deterministic). */
    StreamEntry *
    match(Addr va)
    {
        constexpr std::uint64_t kWindow = 2ULL << 20;
        StreamEntry *best = nullptr;
        std::uint64_t bestDist = kWindow;
        for (auto &entry : table_) {
            if (!entry.valid)
                continue;
            const std::uint64_t dist =
                va > entry.lastVa ? va - entry.lastVa
                                  : entry.lastVa - va;
            if (dist < bestDist) {
                bestDist = dist;
                best = &entry;
            }
        }
        return best;
    }

    StreamEntry *
    allocate()
    {
        StreamEntry *victim = &table_[0];
        for (auto &entry : table_) {
            if (!entry.valid)
                return &entry;
            if (entry.lastUse < victim->lastUse)
                victim = &entry;
        }
        return victim;
    }

    unsigned degree_;
    std::vector<StreamEntry> table_;
    std::uint64_t clock_ = 0;
};

} // namespace

std::unique_ptr<PrefetchEngine>
PrefetchEngine::create(const PrefetchParams &params,
                       unsigned line_bytes)
{
    SEESAW_ASSERT(isPowerOfTwo(line_bytes), "bad line size");
    switch (params.kind) {
      case PrefetchKind::None:
        return nullptr;
      case PrefetchKind::NextLine:
        return std::make_unique<NextLinePrefetcher>(line_bytes,
                                                    params.degree);
      case PrefetchKind::Stride:
        return std::make_unique<StridePrefetcher>(
            line_bytes, params.degree, params.tableEntries);
    }
    SEESAW_FATAL("unknown prefetch kind");
}

} // namespace seesaw
