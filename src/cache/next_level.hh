/**
 * @file
 * The memory hierarchy below the L1: a private L2, the shared LLC
 * (24MB, Table II) and DRAM (51ns round trip). L2 and LLC are real tag
 * stores so that L1 hit-rate changes ripple into outer-level access
 * counts — which is why the paper reports whole-hierarchy energy.
 */

#ifndef SEESAW_CACHE_NEXT_LEVEL_HH
#define SEESAW_CACHE_NEXT_LEVEL_HH

#include "cache/set_assoc_cache.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace seesaw {

/** Geometry and raw latencies of the outer hierarchy. */
struct OuterHierarchyParams
{
    std::uint64_t l2SizeBytes = 256 * 1024;
    unsigned l2Assoc = 8;
    double l2LatencyNs = 3.2;

    std::uint64_t llcSizeBytes = 24ULL * 1024 * 1024;
    unsigned llcAssoc = 16;
    double llcLatencyNs = 9.5;

    double dramLatencyNs = 51.0; //!< Table II round-trip latency
};

/** Which level served an L1 miss. */
enum class HitLevel : std::uint8_t { L2, LLC, Dram };

/** Outcome of one outer-hierarchy access. */
struct OuterAccessResult
{
    HitLevel level = HitLevel::L2;
    unsigned cycles = 0;     //!< total added miss penalty
    bool llcAccessed = false;
    bool dramAccessed = false;
};

/**
 * L2 + LLC + DRAM behind one L1.
 */
class OuterHierarchy
{
  public:
    /**
     * @param shared_llc When non-null, use this externally owned LLC
     *        tag store instead of a private one — multi-core systems
     *        give every core its own OuterHierarchy (private L2 and
     *        per-core stats) over one shared LLC.
     */
    OuterHierarchy(const OuterHierarchyParams &params, double freq_ghz,
                   SetAssocCache *shared_llc = nullptr);

    /** Service an L1 miss for @p pa. Fills L2 and LLC on the way. */
    OuterAccessResult access(Addr pa, AccessType type);

    /** Accept a dirty line written back from the L1. */
    void writeback(Addr pa);

    /** Functionally install @p pa's line into the LLC without charging
     *  time, energy or statistics — steady-state warmup. */
    void prefill(Addr pa);

    unsigned l2Cycles() const { return l2Cycles_; }
    unsigned llcCycles() const { return llcCycles_; }
    unsigned dramCycles() const { return dramCycles_; }

    const StatGroup &stats() const { return stats_; }
    StatGroup &stats() { return stats_; }

    const SetAssocCache &l2() const { return l2_; }
    SetAssocCache &l2() { return l2_; }
    const SetAssocCache &llc() const { return *llc_; }

  private:
    SetAssocCache l2_;
    SetAssocCache ownLlc_;
    SetAssocCache *llc_; //!< &ownLlc_, or the shared LLC
    unsigned l2Cycles_;
    unsigned llcCycles_;
    unsigned dramCycles_;
    StatGroup stats_;

    // Hot-path stat handles (registered once; see common/stats.hh).
    StatScalar *stL2Accesses_;
    StatScalar *stL2Hits_;
    StatScalar *stLlcAccesses_;
    StatScalar *stLlcHits_;
    StatScalar *stDramAccesses_;
    StatScalar *stL1Writebacks_;
};

} // namespace seesaw

#endif // SEESAW_CACHE_NEXT_LEVEL_HH
