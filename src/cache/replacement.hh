/**
 * @file
 * Pluggable replacement policies over contiguous way ranges.
 *
 * SEESAW's insertion policies (Section IV-B1) differ only in the way
 * range a victim is drawn from: the line's partition (`4way`) or the
 * whole set (`4way-8way` for base pages). Victim *selection* within
 * that range is a separate axis; a ReplacementPolicy owns the per-set
 * side-state (recency stamps, fill order, RRPVs) so the tag stores,
 * TLBs and the TFT can share one substrate while sweeping policies.
 *
 * The policy mirrors line validity in an occupancy bit per way,
 * maintained through fill()/invalidate(); victim() always returns the
 * first unoccupied way of the range before consulting the policy, so
 * every policy preserves the historical "invalid ways win immediately"
 * behaviour of the old selectLruVictim().
 *
 * The class is deliberately concrete: touch() and fill() sit on the
 * demand-hit path of every cache, TLB and TFT probe, so the per-kind
 * behaviour is dispatched by an inline switch on the (fixed) kind tag
 * rather than a vtable. Selecting a policy is a construction-time
 * decision; per-access indirect calls would tax the default LRU
 * configuration for a flexibility no caller uses dynamically.
 */

#ifndef SEESAW_CACHE_REPLACEMENT_HH
#define SEESAW_CACHE_REPLACEMENT_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/types.hh"

namespace seesaw {

/** Coherence state of a cached line (MOESI). */
enum class CoherenceState : std::uint8_t {
    Invalid,
    Shared,
    Exclusive,
    Owned,
    Modified,
};

/** @return True when the state implies the local copy is dirty. */
constexpr bool
isDirtyState(CoherenceState s)
{
    return s == CoherenceState::Modified || s == CoherenceState::Owned;
}

/** One line of a tag store. */
struct CacheLine
{
    bool valid = false;
    Addr lineAddr = 0; //!< physical address >> log2(line size)
    CoherenceState state = CoherenceState::Invalid;
    bool prefetched = false; //!< installed by a prefetch, not yet
                             //!< demanded
    PageSize pageSize = PageSize::Base4KB; //!< page the line came from
};

/** Victim-selection policy for a tag store. */
enum class ReplacementKind : std::uint8_t {
    Lru,    //!< least-recently-used (the pinned default)
    Fifo,   //!< oldest fill, touches ignored
    Random, //!< uniform over the range, seeded deterministically
    Srrip,  //!< static re-reference interval prediction
};

/** Replacement configuration, shared by caches, TLBs and the TFT. */
struct ReplacementParams
{
    ReplacementKind kind = ReplacementKind::Lru;
    unsigned rripBits = 2;      //!< RRPV width for Srrip
    std::uint64_t seed = 1;     //!< base seed for Random; construction
                                //!< sites decorrelate per structure
};

/** @return @p params with its Random seed decorrelated by @p salt, so
 *  sibling structures (D/I tags, TFT, each TLB level) sharing one
 *  configured seed still draw independent streams. */
inline ReplacementParams
withSeedSalt(ReplacementParams params, std::uint64_t salt)
{
    params.seed ^= salt;
    return params;
}

/**
 * Per-structure replacement state: one instance per tag store, owning
 * all side-state (the tag store keeps none). Victim ranges are
 * half-open [begin, end) so SEESAW's partition-scoped draws work
 * unchanged.
 */
class ReplacementPolicy
{
  public:
    ReplacementPolicy(const ReplacementParams &params, unsigned num_sets,
                      unsigned assoc);

    /** Build the policy selected by @p params on the heap. The mirrored
     *  structures hold the policy by value instead (one less pointer
     *  chase per touch); this remains for tests and ad-hoc callers. */
    static std::unique_ptr<ReplacementPolicy>
    create(const ReplacementParams &params, unsigned num_sets,
           unsigned assoc);

    ReplacementKind kind() const { return kind_; }
    unsigned numSets() const { return numSets_; }
    unsigned assoc() const { return assoc_; }

    /** A resident way was hit by a demand access. */
    void
    touch(unsigned set, unsigned way)
    {
        touchAt(slot(set, way));
    }

    /**
     * touch() addressed by linear slot index (set * assoc + way) —
     * the layout of state_/occupied_ and of every mirrored structure's
     * own entry array. Callers already holding a pointer into their
     * array (TLB/TFT hit paths) use the pointer difference directly
     * instead of recovering (set, way) with a divide per hit.
     */
    void
    touchAt(std::size_t s)
    {
        if (singleWay_)
            return; // one way per set: the victim is fixed, stamps dead
        switch (kind_) {
          case ReplacementKind::Lru:
            state_[s] = ++clock_;
            return;
          case ReplacementKind::Fifo:
          case ReplacementKind::Random:
            return; // reuse never reorders these
          case ReplacementKind::Srrip:
            state_[s] = 0; // near-immediate re-reference
            return;
        }
    }

    /** A line was installed into @p way. */
    void
    fill(unsigned set, unsigned way)
    {
        const std::size_t s = slot(set, way);
        occupied_[s] = 1; // mirrored even when direct-mapped: the
                          // occupancy audit compares against validity
        if (singleWay_)
            return;
        switch (kind_) {
          case ReplacementKind::Lru:
          case ReplacementKind::Fifo:
            state_[s] = ++clock_;
            return;
          case ReplacementKind::Random:
            return;
          case ReplacementKind::Srrip:
            state_[s] = maxRrpv_ - 1; // long re-reference
            return;
        }
    }

    /** The line in @p way was invalidated. */
    void
    invalidate(unsigned set, unsigned way)
    {
        occupied_[slot(set, way)] = 0;
    }

    /** invalidate() by linear slot index, mirroring touchAt(). */
    void
    invalidateAt(std::size_t s)
    {
        occupied_[s] = 0;
    }

    /**
     * Choose a victim among ways [begin, end) of @p set. Unoccupied
     * ways win immediately (lowest index first); otherwise the policy
     * picks among the occupied ways. Defined inline: it sits on the
     * miss path of every insert, and the LRU scan used to live inside
     * the tag store's insert loop.
     */
    unsigned
    victim(unsigned set, unsigned begin, unsigned end)
    {
        SEESAW_ASSERT(begin < end, "empty victim range");
        // A single-way range has a fixed victim whether occupied or
        // not (unoccupied: first free way; occupied: the only
        // candidate).
        if (end - begin == 1)
            return begin;
        const std::size_t slot0 = static_cast<std::size_t>(set) * assoc_;
        for (unsigned way = begin; way < end; ++way) {
            if (!occupied_[slot0 + way])
                return way;
        }
        if (kind_ == ReplacementKind::Lru ||
            kind_ == ReplacementKind::Fifo) {
            // Strictly-oldest stamp scanned from `begin` — for LRU
            // this is bit-identical to the old selectLruVictim() given
            // the same touch/fill sequence.
            unsigned victim = begin;
            std::uint64_t oldest = ~std::uint64_t{0};
            for (unsigned way = begin; way < end; ++way) {
                if (state_[slot0 + way] < oldest) {
                    oldest = state_[slot0 + way];
                    victim = way;
                }
            }
            return victim;
        }
        return victimSlow(slot0, begin, end);
    }

    /** @return True when the policy believes @p way holds a line. */
    bool
    occupied(unsigned set, unsigned way) const
    {
        return occupied_[slot(set, way)] != 0;
    }

    /** Violation sink for auditSet(): (way, detail). */
    using AuditFail =
        std::function<void(unsigned way, const std::string &detail)>;

    /**
     * Check the policy's own invariant over @p set's side-state (e.g.
     * LRU/FIFO stamp uniqueness and clock bounds, RRPV range) and
     * report each violation through @p fail.
     */
    void auditSet(unsigned set, const AuditFail &fail) const;

    /**
     * Test-only access to the per-way side-state word (recency/fill
     * stamp for LRU/FIFO, RRPV for SRRIP; unused by Random). Mutation
     * tests seed corruption here to prove auditSet() fires.
     */
    std::uint64_t &
    debugStateAt(unsigned set, unsigned way)
    {
        return state_[slot(set, way)];
    }

  private:
    std::size_t
    slot(unsigned set, unsigned way) const
    {
        return static_cast<std::size_t>(set) * assoc_ + way;
    }

    /** Random/SRRIP victim selection, all ways occupied. */
    unsigned victimSlow(std::size_t slot0, unsigned begin, unsigned end);

    ReplacementKind kind_;
    bool singleWay_; //!< assoc == 1: every policy degenerates to fixed
    unsigned numSets_;
    unsigned assoc_;
    std::uint64_t clock_ = 0;  //!< LRU/FIFO stamp source
    std::uint64_t maxRrpv_;    //!< SRRIP saturation value
    std::vector<std::uint64_t> state_; //!< stamps (LRU/FIFO) or RRPVs
    std::vector<std::uint8_t> occupied_;
    Rng rng_; //!< Random's victim stream; idle for other kinds
};

} // namespace seesaw

#endif // SEESAW_CACHE_REPLACEMENT_HH
