/**
 * @file
 * Replacement-victim selection over contiguous way ranges.
 *
 * SEESAW's insertion policies (Section IV-B1) differ only in the way
 * range a victim is drawn from: the line's partition (`4way`) or the
 * whole set (`4way-8way` for base pages). Keeping selection separate
 * from the tag store lets both caches and TLBs share it.
 */

#ifndef SEESAW_CACHE_REPLACEMENT_HH
#define SEESAW_CACHE_REPLACEMENT_HH

#include <cstdint>

#include "common/types.hh"

namespace seesaw {

/** Coherence state of a cached line (MOESI). */
enum class CoherenceState : std::uint8_t {
    Invalid,
    Shared,
    Exclusive,
    Owned,
    Modified,
};

/** @return True when the state implies the local copy is dirty. */
constexpr bool
isDirtyState(CoherenceState s)
{
    return s == CoherenceState::Modified || s == CoherenceState::Owned;
}

/** One line of a tag store. */
struct CacheLine
{
    bool valid = false;
    Addr lineAddr = 0; //!< physical address >> log2(line size)
    CoherenceState state = CoherenceState::Invalid;
    std::uint64_t lastUse = 0; //!< LRU timestamp
    PageSize pageSize = PageSize::Base4KB; //!< page the line came from
};

/**
 * Pick an LRU victim among ways [begin, end) of @p lines.
 * Invalid ways win immediately.
 * @return The victim way index (absolute, i.e., in [begin, end)).
 */
unsigned selectLruVictim(const CacheLine *lines, unsigned begin,
                         unsigned end);

} // namespace seesaw

#endif // SEESAW_CACHE_REPLACEMENT_HH
