#include "cache/way_predictor.hh"

#include "common/logging.hh"

namespace seesaw {

MruWayPredictor::MruWayPredictor(unsigned sets, unsigned ways,
                                 unsigned partitions)
    : sets_(sets), ways_(ways), partitions_(partitions),
      waysPerPartition_(ways / partitions),
      setMru_(sets, 0),
      partitionMru_(static_cast<std::size_t>(sets) * partitions, 0)
{
    SEESAW_ASSERT(partitions_ >= 1 && ways_ % partitions_ == 0,
                  "partitions must divide ways");
}

unsigned
MruWayPredictor::predict(unsigned set) const
{
    SEESAW_ASSERT(set < sets_, "set out of range");
    return setMru_[set];
}

unsigned
MruWayPredictor::predictInPartition(unsigned set,
                                    unsigned partition) const
{
    SEESAW_ASSERT(set < sets_ && partition < partitions_,
                  "index out of range");
    const unsigned local =
        partitionMru_[static_cast<std::size_t>(set) * partitions_ +
                      partition];
    return partition * waysPerPartition_ + local;
}

void
MruWayPredictor::update(unsigned set, unsigned way)
{
    SEESAW_ASSERT(set < sets_ && way < ways_, "index out of range");
    setMru_[set] = static_cast<std::uint16_t>(way);
    const unsigned partition = way / waysPerPartition_;
    partitionMru_[static_cast<std::size_t>(set) * partitions_ +
                  partition] =
        static_cast<std::uint16_t>(way % waysPerPartition_);
}

void
MruWayPredictor::recordOutcome(bool correct)
{
    ++predictions_;
    correct_ += correct ? 1 : 0;
}

} // namespace seesaw
