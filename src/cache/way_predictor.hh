/**
 * @file
 * MRU way prediction (Powell et al., ISCA 2001), used standalone on the
 * baseline VIPT cache and combined with SEESAW (Section VI-F).
 *
 * The predictor remembers the most-recently-used way of each set, and —
 * to serve the combined WP+SEESAW design — also the MRU way *within
 * each partition* of each set, so SEESAW can hand it the right
 * partition and bound the misprediction penalty to that partition.
 */

#ifndef SEESAW_CACHE_WAY_PREDICTOR_HH
#define SEESAW_CACHE_WAY_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"

namespace seesaw {

/**
 * Per-set (and per-partition) MRU way tracking.
 */
class MruWayPredictor
{
  public:
    /**
     * @param sets Number of cache sets covered.
     * @param ways Ways per set.
     * @param partitions Way groups per set (1 when unpartitioned).
     */
    MruWayPredictor(unsigned sets, unsigned ways, unsigned partitions);

    /** Predict the way for a whole-set access. */
    unsigned predict(unsigned set) const;

    /** Predict the way for an access confined to @p partition
     *  (returns an absolute way index). */
    unsigned predictInPartition(unsigned set, unsigned partition) const;

    /** Record the way that actually hit (or was filled). */
    void update(unsigned set, unsigned way);

    /** Record a prediction outcome for the statistics. */
    void recordOutcome(bool correct);

    unsigned sets() const { return sets_; }
    unsigned ways() const { return ways_; }
    unsigned partitions() const { return partitions_; }

    std::uint64_t predictions() const { return predictions_; }
    std::uint64_t correct() const { return correct_; }
    double
    accuracy() const
    {
        return predictions_ ? static_cast<double>(correct_) /
                                  static_cast<double>(predictions_)
                            : 0.0;
    }

  private:
    unsigned sets_;
    unsigned ways_;
    unsigned partitions_;
    unsigned waysPerPartition_;

    std::vector<std::uint16_t> setMru_;        //!< per set
    std::vector<std::uint16_t> partitionMru_;  //!< per set x partition

    std::uint64_t predictions_ = 0;
    std::uint64_t correct_ = 0;
};

} // namespace seesaw

#endif // SEESAW_CACHE_WAY_PREDICTOR_HH
