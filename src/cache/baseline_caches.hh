/**
 * @file
 * Baseline L1 designs SEESAW is evaluated against: the traditional
 * highly-associative VIPT cache (optionally with MRU way prediction,
 * Fig 15) and the PIPT alternative with a serialised TLB (Fig 14).
 */

#ifndef SEESAW_CACHE_BASELINE_CACHES_HH
#define SEESAW_CACHE_BASELINE_CACHES_HH

#include <memory>

#include "cache/l1_cache.hh"
#include "cache/way_predictor.hh"
#include "model/latency_table.hh"

namespace seesaw {

/** Configuration shared by the baseline caches. */
struct BaselineL1Config
{
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 8;
    unsigned lineBytes = 64;
    double freqGhz = 1.33;
    bool wayPrediction = false; //!< VIPT only: MRU way predictor
    ReplacementParams replacement; //!< tag-store victim policy
};

/**
 * A traditional VIPT L1: every lookup reads all ways of the set, and
 * hit latency equals the paper's baseline (Table III).
 */
class ViptCache final : public L1Cache
{
  public:
    ViptCache(const BaselineL1Config &config,
              const LatencyTable &latency);

    L1AccessResult access(const L1Access &req) override;
    L1ProbeResult probe(Addr pa, bool invalidating) override;
    unsigned baseHitCycles() const override { return hitCycles_; }
    unsigned fastHitCycles() const override { return hitCycles_; }
    unsigned sweepRegion(Addr pa_base, std::uint64_t bytes) override;
    const SetAssocCache &tags() const override { return tags_; }
    SetAssocCache &tags() override { return tags_; }
    const StatGroup &stats() const override { return stats_; }
    StatGroup &stats() override { return stats_; }

    /** Way-predictor state (valid only when wayPrediction was set). */
    const MruWayPredictor *wayPredictor() const
    {
        return predictor_.get();
    }

  private:
    BaselineL1Config config_;
    SetAssocCache tags_;
    unsigned hitCycles_;
    unsigned wpMispredictPenalty_;
    std::unique_ptr<MruWayPredictor> predictor_;
    StatGroup stats_;

    // Hot-path stat handles (registered once; see common/stats.hh).
    StatScalar *stAccesses_;
    StatScalar *stHits_;
    StatScalar *stMisses_;
};

/**
 * A PIPT L1: the TLB is serialised before the cache, but associativity
 * (and therefore array latency) can be chosen freely (Fig 14).
 */
class PiptCache final : public L1Cache
{
  public:
    /**
     * @param tlb_latency_cycles L1 TLB latency paid before every
     *        cache access (the PIPT serialisation cost).
     */
    PiptCache(const BaselineL1Config &config,
              const LatencyTable &latency,
              unsigned tlb_latency_cycles);

    L1AccessResult access(const L1Access &req) override;
    L1ProbeResult probe(Addr pa, bool invalidating) override;
    unsigned baseHitCycles() const override { return hitCycles_; }
    unsigned fastHitCycles() const override { return hitCycles_; }
    unsigned sweepRegion(Addr pa_base, std::uint64_t bytes) override;
    const SetAssocCache &tags() const override { return tags_; }
    SetAssocCache &tags() override { return tags_; }
    const StatGroup &stats() const override { return stats_; }
    StatGroup &stats() override { return stats_; }

  private:
    BaselineL1Config config_;
    SetAssocCache tags_;
    unsigned hitCycles_; //!< includes the serial TLB lookup
    StatGroup stats_;

    // Hot-path stat handles (registered once; see common/stats.hh).
    StatScalar *stAccesses_;
    StatScalar *stHits_;
    StatScalar *stMisses_;
};

} // namespace seesaw

#endif // SEESAW_CACHE_BASELINE_CACHES_HH
