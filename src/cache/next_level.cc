#include "cache/next_level.hh"

#include <cmath>

#include "common/logging.hh"

namespace seesaw {

namespace {

unsigned
toCycles(double ns, double freq_ghz)
{
    return static_cast<unsigned>(std::ceil(ns * freq_ghz - 1e-9));
}

} // namespace

OuterHierarchy::OuterHierarchy(const OuterHierarchyParams &params,
                               double freq_ghz,
                               SetAssocCache *shared_llc)
    : l2_(params.l2SizeBytes, params.l2Assoc),
      ownLlc_(params.llcSizeBytes, params.llcAssoc),
      llc_(shared_llc ? shared_llc : &ownLlc_),
      l2Cycles_(toCycles(params.l2LatencyNs, freq_ghz)),
      llcCycles_(toCycles(params.llcLatencyNs, freq_ghz)),
      dramCycles_(toCycles(params.dramLatencyNs, freq_ghz)),
      stats_("outer"),
      stL2Accesses_(&stats_.scalar("l2_accesses")),
      stL2Hits_(&stats_.scalar("l2_hits")),
      stLlcAccesses_(&stats_.scalar("llc_accesses")),
      stLlcHits_(&stats_.scalar("llc_hits")),
      stDramAccesses_(&stats_.scalar("dram_accesses")),
      stL1Writebacks_(&stats_.scalar("l1_writebacks"))
{
    SEESAW_ASSERT(freq_ghz > 0.0, "bad frequency");
}

OuterAccessResult
OuterHierarchy::access(Addr pa, AccessType type)
{
    OuterAccessResult res;
    const auto fill_state = type == AccessType::Write
                                ? CoherenceState::Modified
                                : CoherenceState::Exclusive;

    ++*stL2Accesses_;
    res.cycles = l2Cycles_;
    if (l2_.lookup(pa).hit) {
        ++*stL2Hits_;
        res.level = HitLevel::L2;
        return res;
    }

    ++*stLlcAccesses_;
    res.llcAccessed = true;
    res.cycles += llcCycles_;
    if (llc_->lookup(pa).hit) {
        ++*stLlcHits_;
        res.level = HitLevel::LLC;
        l2_.insert(pa, SetAssocCache::InsertScope::FullSet, fill_state,
                   PageSize::Base4KB);
        return res;
    }

    ++*stDramAccesses_;
    res.dramAccessed = true;
    res.cycles += dramCycles_;
    res.level = HitLevel::Dram;
    llc_->insert(pa, SetAssocCache::InsertScope::FullSet, fill_state,
                PageSize::Base4KB);
    l2_.insert(pa, SetAssocCache::InsertScope::FullSet, fill_state,
               PageSize::Base4KB);
    return res;
}

void
OuterHierarchy::prefill(Addr pa)
{
    if (!llc_->peek(pa).hit) {
        llc_->insert(pa, SetAssocCache::InsertScope::FullSet,
                    CoherenceState::Exclusive, PageSize::Base4KB);
    }
}

void
OuterHierarchy::writeback(Addr pa)
{
    ++*stL1Writebacks_;
    // Write-allocate into the L2; dirty data propagates lazily.
    if (!l2_.lookup(pa).hit) {
        l2_.insert(pa, SetAssocCache::InsertScope::FullSet,
                   CoherenceState::Modified, PageSize::Base4KB);
    }
}

} // namespace seesaw
