/**
 * @file
 * A speculatively-indexed, physically-tagged (SIPT) L1 cache — the
 * related design the paper calls "closest in spirit" to SEESAW
 * (Section VII; Zheng et al., HPCA 2018).
 *
 * SIPT breaks the VIPT set-count ceiling differently: it uses k
 * virtual-address bits *above* the page offset as extra index bits
 * (2^k times the sets at 1/2^k the associativity) and speculates that
 * those bits survive translation. A per-page predictor supplies the
 * expected physical bits; when the TLB result disagrees, the access is
 * replayed at the correct index (a rollback — the mechanism the SEESAW
 * paper contrasts against its speculation-free TFT guarantee).
 *
 * Lines are placed by their *physical* index bits, so coherence probes
 * index directly and mispeculation can never produce duplicates.
 */

#ifndef SEESAW_CACHE_SIPT_CACHE_HH
#define SEESAW_CACHE_SIPT_CACHE_HH

#include <vector>

#include "cache/l1_cache.hh"
#include "model/latency_table.hh"

namespace seesaw {

/** SIPT configuration. */
struct SiptConfig
{
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 2;       //!< reduced: sets grow instead (e.g.,
                              //!< 32KB 2-way = 256 sets)
    unsigned lineBytes = 64;
    double freqGhz = 1.33;
    unsigned predictorEntries = 512; //!< per-page index-bit predictor
    unsigned replayPenaltyCycles = 2; //!< re-access at the right index
    ReplacementParams replacement;    //!< tag-store victim policy
};

/**
 * The SIPT L1 data cache.
 */
class SiptCache final : public L1Cache
{
  public:
    SiptCache(const SiptConfig &config, const LatencyTable &latency);

    L1AccessResult access(const L1Access &req) override;
    L1ProbeResult probe(Addr pa, bool invalidating) override;

    unsigned baseHitCycles() const override
    {
        return hitCycles_ + config_.replayPenaltyCycles;
    }
    unsigned fastHitCycles() const override { return hitCycles_; }

    unsigned sweepRegion(Addr pa_base, std::uint64_t bytes) override;
    const SetAssocCache &tags() const override { return tags_; }
    SetAssocCache &tags() override { return tags_; }
    const StatGroup &stats() const override { return stats_; }
    StatGroup &stats() override { return stats_; }

    /** Bits of the index that lie above the page offset. */
    unsigned speculativeBits() const { return specBits_; }

    /** Fraction of accesses whose speculated index bits were right. */
    double
    predictionAccuracy() const
    {
        const double total = stats_.get("accesses");
        return total > 0.0 ? stats_.get("spec_correct") / total : 0.0;
    }

    /** Accesses whose speculated index bits were wrong (replays). */
    std::uint64_t specWrong() const { return stSpecWrong_->count(); }

  private:
    struct PredictorEntry
    {
        bool valid = false;
        Addr vpn = 0;
        unsigned bits = 0; //!< last observed PA index bits above 4KB
    };

    SiptConfig config_;
    SetAssocCache tags_;
    unsigned hitCycles_;
    unsigned specBits_; //!< index bits above bit 11
    std::vector<PredictorEntry> predictor_;
    StatGroup stats_;

    // Hot-path stat handles (registered once; see common/stats.hh).
    StatScalar *stAccesses_;
    StatScalar *stHits_;
    StatScalar *stMisses_;
    StatScalar *stSpecCorrect_;
    StatScalar *stSpecWrong_;

    /** PA bits [11+specBits : 12]. */
    unsigned
    extraBitsOf(Addr addr) const
    {
        return static_cast<unsigned>((addr >> 12) &
                                     ((1u << specBits_) - 1));
    }

    /** Predict the extra index bits for @p va. */
    unsigned predictBits(Addr va) const;

    /** Train the predictor with the observed translation. */
    void train(Addr va, unsigned pa_bits);
};

} // namespace seesaw

#endif // SEESAW_CACHE_SIPT_CACHE_HH
