#include "cache/baseline_caches.hh"

#include "common/logging.hh"

namespace seesaw {

ViptCache::ViptCache(const BaselineL1Config &config,
                     const LatencyTable &latency)
    : config_(config),
      tags_(config.sizeBytes, config.assoc, config.lineBytes, 1,
            config.replacement),
      hitCycles_(latency.basePageCycles(config.sizeBytes, config.assoc,
                                        config.freqGhz)),
      wpMispredictPenalty_(1),
      stats_("vipt"),
      stAccesses_(&stats_.scalar("accesses")),
      stHits_(&stats_.scalar("hits")),
      stMisses_(&stats_.scalar("misses"))
{
    if (config.wayPrediction) {
        predictor_ = std::make_unique<MruWayPredictor>(
            tags_.numSets(), config.assoc, 1);
    }
}

L1AccessResult
ViptCache::access(const L1Access &req)
{
    L1AccessResult res;
    ++*stAccesses_;

    const unsigned set = tags_.setIndex(req.pa);
    unsigned predicted = 0;
    if (predictor_) {
        predicted = predictor_->predict(set);
        res.wpUsed = true;
    }

    const TagLookup look = tags_.lookup(req.pa);
    res.hit = look.hit;

    if (!predictor_) {
        res.latencyCycles = hitCycles_;
        res.waysRead = config_.assoc;
        res.fastPath = look.hit;
    } else if (look.hit && look.way == predicted) {
        // Correct prediction: only the predicted way is energised.
        res.wpCorrect = true;
        res.latencyCycles = hitCycles_;
        res.waysRead = 1;
        res.fastPath = true;
        predictor_->recordOutcome(true);
    } else {
        // Mispredict (or miss). Way prediction gates only the data
        // array: all tags compare in parallel, so the mispredict is
        // known at tag-match time and costs one extra data-array
        // access — dependents are rescheduled with a bubble, not a
        // full replay (Powell et al.).
        res.wpCorrect = false;
        res.latencyCycles = hitCycles_ + wpMispredictPenalty_;
        res.waysRead = 2; // predicted way + the correct way
        res.fastPath = false;
        predictor_->recordOutcome(false);
    }

    if (look.hit) {
        ++*stHits_;
        res.wasPrefetched = look.wasPrefetched;
        if (req.type == AccessType::Write)
            tags_.lineAt(set, look.way).state = CoherenceState::Modified;
        if (predictor_)
            predictor_->update(set, look.way);
        return res;
    }

    // Miss: install with a set-wide policy victim.
    ++*stMisses_;
    const auto state = req.type == AccessType::Write
                           ? CoherenceState::Modified
                           : CoherenceState::Exclusive;
    res.eviction = tags_.insert(req.pa, SetAssocCache::InsertScope::FullSet,
                                state, req.pageSize);
    res.installWays = config_.assoc;
    if (predictor_) {
        const TagLookup filled = tags_.peek(req.pa);
        SEESAW_ASSERT(filled.hit, "fill must be visible");
        predictor_->update(set, filled.way);
    }
    return res;
}

L1ProbeResult
ViptCache::probe(Addr pa, bool invalidating)
{
    L1ProbeResult res;
    // Coherence probes carry a physical address; the unpartitioned
    // baseline must energise every way of the set.
    res.waysRead = config_.assoc;
    CacheLine *line = tags_.findLine(pa);
    if (!line)
        return res;
    res.hit = true;
    res.wasDirty = isDirtyState(line->state);
    if (invalidating) {
        // Route through the tag store so the replacement policy sees
        // the way free up.
        tags_.invalidate(pa);
    } else {
        // Downgrade: a remote reader leaves us Shared (or Owned when we
        // held dirty data and must supply it).
        line->state = res.wasDirty ? CoherenceState::Owned
                                   : CoherenceState::Shared;
    }
    return res;
}

unsigned
ViptCache::sweepRegion(Addr pa_base, std::uint64_t bytes)
{
    return tags_.sweepRegion(pa_base, bytes);
}

PiptCache::PiptCache(const BaselineL1Config &config,
                     const LatencyTable &latency,
                     unsigned tlb_latency_cycles)
    : config_(config),
      tags_(config.sizeBytes, config.assoc, config.lineBytes, 1,
            config.replacement),
      hitCycles_(latency.piptCycles(config.sizeBytes, config.assoc,
                                    config.freqGhz,
                                    tlb_latency_cycles)),
      stats_("pipt"),
      stAccesses_(&stats_.scalar("accesses")),
      stHits_(&stats_.scalar("hits")),
      stMisses_(&stats_.scalar("misses"))
{
    SEESAW_ASSERT(!config.wayPrediction,
                  "way prediction unsupported on the PIPT baseline");
}

L1AccessResult
PiptCache::access(const L1Access &req)
{
    L1AccessResult res;
    ++*stAccesses_;

    const TagLookup look = tags_.lookup(req.pa);
    res.hit = look.hit;
    res.latencyCycles = hitCycles_;
    res.waysRead = config_.assoc;
    res.fastPath = look.hit;

    if (look.hit) {
        ++*stHits_;
        res.wasPrefetched = look.wasPrefetched;
        if (req.type == AccessType::Write)
            tags_.lineAt(tags_.setIndex(req.pa), look.way).state =
                CoherenceState::Modified;
        return res;
    }

    ++*stMisses_;
    const auto state = req.type == AccessType::Write
                           ? CoherenceState::Modified
                           : CoherenceState::Exclusive;
    res.eviction = tags_.insert(req.pa, SetAssocCache::InsertScope::FullSet,
                                state, req.pageSize);
    res.installWays = config_.assoc;
    return res;
}

L1ProbeResult
PiptCache::probe(Addr pa, bool invalidating)
{
    L1ProbeResult res;
    res.waysRead = config_.assoc;
    CacheLine *line = tags_.findLine(pa);
    if (!line)
        return res;
    res.hit = true;
    res.wasDirty = isDirtyState(line->state);
    if (invalidating) {
        tags_.invalidate(pa);
    } else {
        line->state = res.wasDirty ? CoherenceState::Owned
                                   : CoherenceState::Shared;
    }
    return res;
}

unsigned
PiptCache::sweepRegion(Addr pa_base, std::uint64_t bytes)
{
    return tags_.sweepRegion(pa_base, bytes);
}

} // namespace seesaw
