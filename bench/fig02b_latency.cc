/**
 * @file
 * Fig 2b: L1 access latency (ns) vs associativity for 16-128KB caches
 * (22nm-scaled SRAM model). Expected shape: 10-25% growth per
 * associativity doubling, with some configurations (128KB 32-way)
 * clearly infeasible for an L1.
 */

#include <cstdio>

#include "bench_common.hh"
#include "model/sram_model.hh"

int
main()
{
    using namespace seesaw;

    printBanner("Fig 2b", "Cache access latency (ns) vs associativity");

    SramModel sram(TechNode::Intel22);
    const std::uint64_t sizes[] = {16 * 1024, 32 * 1024, 64 * 1024,
                                   128 * 1024};
    const unsigned assocs[] = {1, 2, 4, 8, 16, 32};

    TableReporter table({"cache", "DM", "2-way", "4-way", "8-way",
                         "16-way", "32-way"});
    for (auto size : sizes) {
        std::vector<std::string> row{std::to_string(size / 1024) +
                                     "KB"};
        for (auto assoc : assocs)
            row.push_back(
                TableReporter::fmt(sram.accessLatencyNs(size, assoc), 2));
        table.addRow(row);
    }
    table.print();

    std::printf("\nPer-step growth (paper: 10-25%% per associativity "
                "doubling):\n");
    for (auto size : sizes) {
        std::printf("  %3lluKB:",
                    static_cast<unsigned long long>(size / 1024));
        for (unsigned a = 2; a <= 32; a *= 2) {
            const double step = sram.accessLatencyNs(size, a) /
                                sram.accessLatencyNs(size, a / 2);
            std::printf(" %+.0f%%", (step - 1.0) * 100.0);
        }
        std::printf("\n");
    }

    std::printf("\nTech scaling (paper: -3%% at 22nm, -17%% at 14nm "
                "vs 28-32nm; relative trends unchanged):\n");
    SramModel s28(TechNode::Tsmc28), s14(TechNode::Intel14);
    const double l28 = s28.accessLatencyNs(32 * 1024, 8);
    const double l22 = sram.accessLatencyNs(32 * 1024, 8);
    const double l14 = s14.accessLatencyNs(32 * 1024, 8);
    std::printf("  32KB 8-way: 28nm %.2fns -> 22nm %.2fns (%.0f%%) -> "
                "14nm %.2fns (%.0f%%)\n",
                l28, l22, (l22 / l28 - 1.0) * 100.0, l14,
                (l14 / l28 - 1.0) * 100.0);
    return 0;
}
