/**
 * @file
 * google-benchmark micro-benchmarks of the library's hot primitives:
 * tag-store lookups, TFT probes, TLB lookups, buddy allocation and
 * end-to-end simulated-instruction throughput.
 */

#include <benchmark/benchmark.h>

#include "cache/set_assoc_cache.hh"
#include "common/random.hh"
#include "core/seesaw_cache.hh"
#include "core/tft.hh"
#include "mem/buddy_allocator.hh"
#include "sim/experiment.hh"
#include "tlb/tlb.hh"

namespace {

using namespace seesaw;

void
BM_TagStoreLookup(benchmark::State &state)
{
    SetAssocCache cache(32 * 1024, 8, 64, 2);
    Rng rng(1);
    for (int i = 0; i < 4096; ++i) {
        cache.insert(rng.next() & 0xffffff,
                     SetAssocCache::InsertScope::Partition,
                     CoherenceState::Exclusive, PageSize::Base4KB);
    }
    Addr pa = 0;
    for (auto _ : state) {
        pa = (pa + 8191) & 0xffffff;
        benchmark::DoNotOptimize(cache.lookup(pa));
    }
}
BENCHMARK(BM_TagStoreLookup);

void
BM_TagStorePartitionLookup(benchmark::State &state)
{
    SetAssocCache cache(32 * 1024, 8, 64, 2);
    Addr pa = 0;
    for (auto _ : state) {
        pa = (pa + 8191) & 0xffffff;
        benchmark::DoNotOptimize(
            cache.lookupPartition(pa, cache.partitionIndex(pa)));
    }
}
BENCHMARK(BM_TagStorePartitionLookup);

void
BM_TftLookup(benchmark::State &state)
{
    Tft tft(16);
    for (Addr r = 0; r < 16; ++r)
        tft.markRegion(r << 21);
    Addr va = 0;
    for (auto _ : state) {
        va += 0x200000;
        benchmark::DoNotOptimize(tft.lookup(va));
    }
}
BENCHMARK(BM_TftLookup);

void
BM_TlbLookup(benchmark::State &state)
{
    Tlb tlb("bm", 128, 4, PageSize::Base4KB);
    for (Addr p = 0; p < 128; ++p)
        tlb.insert(1, p << 12, p << 12);
    Addr va = 0;
    for (auto _ : state) {
        va = (va + 4096) & 0x7ffff;
        benchmark::DoNotOptimize(tlb.lookup(1, va));
    }
}
BENCHMARK(BM_TlbLookup);

void
BM_BuddyAllocFree(benchmark::State &state)
{
    BuddyAllocator buddy(256ULL << 20);
    for (auto _ : state) {
        auto f = buddy.allocate(0);
        benchmark::DoNotOptimize(f);
        buddy.free(*f, 0);
    }
}
BENCHMARK(BM_BuddyAllocFree);

void
BM_SeesawAccess(benchmark::State &state)
{
    LatencyTable latency;
    SeesawConfig cfg;
    SeesawCache cache(cfg, latency);
    const Addr va = (7ULL << 21) | 0x1440;
    const Addr pa = (0x99ULL << 21) | (va & 0x1fffff);
    cache.tft().markRegion(va);
    L1Access req{va, pa, PageSize::Super2MB, AccessType::Read};
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.access(req));
}
BENCHMARK(BM_SeesawAccess);

void
BM_EndToEndSimulation(benchmark::State &state)
{
    WorkloadSpec w = findWorkload("redis");
    w.footprintBytes = 8ULL << 20;
    for (auto _ : state) {
        SystemConfig cfg;
        cfg.instructions = 20'000;
        cfg.os.memBytes = 256ULL << 20;
        benchmark::DoNotOptimize(simulate(w, cfg));
    }
    state.SetItemsProcessed(state.iterations() * 20'000);
}
BENCHMARK(BM_EndToEndSimulation)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
