/**
 * @file
 * Ablation (§VI-B): directory vs snoopy coherence fabrics.
 *
 * The paper's Fig 11 numbers use a MOESI directory, which filters out
 * most spurious L1 probes. On a snoopy bus every remote transaction
 * probes the L1, so SEESAW's cheap 4-way probes save an additional
 * 2-5% of memory-hierarchy energy for multi-threaded workloads.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace seesaw;
    using namespace seesaw::bench;

    printBanner("Ablation: coherence fabric",
                "directory vs snoopy energy savings (64KB, OoO)");

    TableReporter table({"workload", "threads", "directory", "snoopy",
                         "extra from snoopy"});
    for (const auto &w : cloudWorkloads()) {
        double saved[2];
        int i = 0;
        for (CoherenceKind fabric :
             {CoherenceKind::Directory, CoherenceKind::Snoopy}) {
            SystemConfig cfg = makeConfig(kCacheOrgs[1], 1.33);
            cfg.fabric = fabric;
            saved[i++] =
                compareBaselineVsSeesaw(w, cfg).energySavedPct;
        }
        table.addRow({w.name, std::to_string(w.threads),
                      TableReporter::pct(saved[0], 1),
                      TableReporter::pct(saved[1], 1),
                      TableReporter::fmt(saved[1] - saved[0], 2)});
    }
    table.print();

    std::printf("\nShape check (paper): snoopy fabrics add ~2-5 extra "
                "points of energy savings for multi-threaded "
                "workloads.\n");
    return 0;
}
