/**
 * @file
 * Fig 14: SEESAW vs alternative ways to tame a slow, highly
 * associative 128KB VIPT baseline — PIPT designs with reduced
 * associativity (2/4/8-way) and serialised TLB lookups of varying
 * latency. Reported as percent runtime/energy improvement over the
 * 128KB 32-way VIPT baseline at each frequency (avg/min/max across
 * workloads; the best alternative is shown).
 *
 * Expected shape: SEESAW beats every PIPT alternative on both axes —
 * it keeps the hit rate of full associativity and the TLB capacity,
 * while matching the alternatives' access latency for superpages.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace seesaw;
    using namespace seesaw::bench;

    printBanner("Fig 14", "SEESAW vs PIPT alternatives (128KB L1)");

    const CacheOrg org = kCacheOrgs[2]; // 128KB / 32-way
    TableReporter table({"freq", "design", "perf avg", "perf min",
                         "perf max", "energy avg"});

    for (double freq : kFrequencies) {
        // SEESAW.
        std::vector<double> see_perf, see_energy;
        // Best alternative per workload: PIPT with assoc 2/4/8 and
        // TLB latency 1-2 cycles.
        std::vector<double> alt_perf, alt_energy;

        for (const auto &w : paperWorkloads()) {
            SystemConfig base_cfg = makeConfig(org, freq, 150'000);
            base_cfg.l1Kind = L1Kind::ViptBaseline;
            const RunResult base = simulate(w, base_cfg);

            SystemConfig see_cfg = base_cfg;
            see_cfg.l1Kind = L1Kind::Seesaw;
            const RunResult see = simulate(w, see_cfg);
            see_perf.push_back(runtimeImprovementPercent(base, see));
            see_energy.push_back(energySavedPercent(base, see));

            double best_perf = -1e9, best_energy = 0.0;
            for (unsigned assoc : {2u, 4u, 8u}) {
                for (unsigned tlb : {1u, 2u}) {
                    SystemConfig pipt_cfg = base_cfg;
                    pipt_cfg.l1Kind = L1Kind::Pipt;
                    pipt_cfg.l1Assoc = assoc;
                    pipt_cfg.piptTlbCycles = tlb;
                    const RunResult pipt = simulate(w, pipt_cfg);
                    const double perf =
                        runtimeImprovementPercent(base, pipt);
                    if (perf > best_perf) {
                        best_perf = perf;
                        best_energy = energySavedPercent(base, pipt);
                    }
                }
            }
            alt_perf.push_back(best_perf);
            alt_energy.push_back(best_energy);
        }

        const Summary sp = summarize(see_perf);
        const Summary ap = summarize(alt_perf);
        table.addRow({TableReporter::fmt(freq, 2) + "GHz", "SEESAW",
                      TableReporter::pct(sp.avg, 1),
                      TableReporter::pct(sp.min, 1),
                      TableReporter::pct(sp.max, 1),
                      TableReporter::pct(summarize(see_energy).avg,
                                         1)});
        table.addRow({TableReporter::fmt(freq, 2) + "GHz",
                      "best PIPT", TableReporter::pct(ap.avg, 1),
                      TableReporter::pct(ap.min, 1),
                      TableReporter::pct(ap.max, 1),
                      TableReporter::pct(summarize(alt_energy).avg,
                                         1)});
    }
    table.print();

    std::printf("\nShape check (paper): SEESAW consistently outperforms "
                "the PIPT/associativity alternatives on performance and "
                "energy.\n");
    return 0;
}
