/**
 * @file
 * Table I: anatomy of a SEESAW lookup, reproduced by driving directed
 * single accesses through a 32KB 8-way SEESAW cache at 1.33GHz and
 * reporting cycles/ways per (page size, TFT outcome, cache outcome).
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/seesaw_cache.hh"

int
main()
{
    using namespace seesaw;

    printBanner("Table I", "Anatomy of a lookup using SEESAW "
                           "(32KB 8-way L1 at 1.33GHz)");

    LatencyTable latency;
    TableReporter table({"PageSize", "TFT", "Cache", "cycles",
                         "ways read", "savings vs baseline"});

    auto run = [&](const char *page, const char *tft, const char *cache,
                   const L1AccessResult &res, unsigned baseline_cycles,
                   unsigned baseline_ways) {
        std::string savings;
        if (res.latencyCycles < baseline_cycles &&
            res.waysRead < baseline_ways)
            savings = "Latency + Energy";
        else if (res.waysRead < baseline_ways)
            savings = "Energy";
        else
            savings = "None";
        table.addRow({page, tft, cache,
                      std::to_string(res.latencyCycles),
                      std::to_string(res.waysRead), savings});
    };

    const unsigned baseline_cycles =
        latency.basePageCycles(32 * 1024, 8, 1.33);
    const unsigned baseline_ways = 8;

    // Row 1: 2MB page, TFT hit, cache hit.
    {
        SeesawConfig cfg;
        SeesawCache cache(cfg, latency);
        const Addr va = (7ULL << 21) | 0x1440;
        const Addr pa = (0x99ULL << 21) | (va & 0x1fffff);
        cache.tft().markRegion(va);
        cache.access({va, pa, PageSize::Super2MB, AccessType::Read});
        const auto res = cache.access(
            {va, pa, PageSize::Super2MB, AccessType::Read});
        run("2MB", "Hit", "Hit", res, baseline_cycles, baseline_ways);
    }
    // Row 2: 2MB page, TFT hit, cache miss.
    {
        SeesawConfig cfg;
        SeesawCache cache(cfg, latency);
        const Addr va = (7ULL << 21) | 0x1440;
        const Addr pa = (0x99ULL << 21) | (va & 0x1fffff);
        cache.tft().markRegion(va);
        const auto res = cache.access(
            {va, pa, PageSize::Super2MB, AccessType::Read});
        run("2MB", "Hit", "Miss", res, baseline_cycles, baseline_ways);
    }
    // Row 3: 2MB page, TFT miss.
    {
        SeesawConfig cfg;
        SeesawCache cache(cfg, latency);
        const Addr va = (7ULL << 21) | 0x1440;
        const Addr pa = (0x99ULL << 21) | (va & 0x1fffff);
        const auto res = cache.access(
            {va, pa, PageSize::Super2MB, AccessType::Read});
        run("2MB", "Miss", "*", res, baseline_cycles, baseline_ways);
    }
    // Row 4: 4KB page (TFT always misses).
    {
        SeesawConfig cfg;
        SeesawCache cache(cfg, latency);
        const Addr va = 0x5001440;
        const Addr pa = 0x2440;
        const auto res =
            cache.access({va, pa, PageSize::Base4KB, AccessType::Read});
        run("4KB", "Miss", "*", res, baseline_cycles, baseline_ways);
    }

    table.print();
    std::printf("\nBaseline VIPT reference: %u cycles, %u ways on every "
                "lookup.\nCoherence probes (4way policy): 4 ways for "
                "base pages and superpages alike.\n",
                baseline_cycles, baseline_ways);
    return 0;
}
