/**
 * @file
 * Fig 13: percentage of superpage accesses the TFT fails to identify,
 * for 12/16/20-entry TFTs and 32/64/128KB caches, split into TFT
 * misses that hit vs miss in the L1 (avg/min/max across workloads).
 *
 * Expected shape: a 16-entry TFT keeps worst-case miss rates under
 * ~10%; 20 entries barely improve on 16; the bulk of TFT misses
 * coincide with L1 misses (so the extra partition read hides under
 * the L2 access).
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace seesaw;
    using namespace seesaw::bench;

    printBanner("Fig 13", "% superpage accesses missed by the TFT "
                          "(split by L1 hit/miss)");

    TableReporter table({"TFT", "cache", "L1-hit avg", "L1-miss avg",
                         "total avg", "min", "max"});
    for (unsigned entries : {12u, 16u, 20u}) {
        for (const auto &org : kCacheOrgs) {
            std::vector<double> totals, hit_rates, miss_rates;
            for (const auto &w : paperWorkloads()) {
                SystemConfig cfg = makeConfig(org, 1.33, 200'000);
                cfg.tftEntries = entries;
                const RunResult r = simulate(w, cfg);
                if (r.superpageRefs == 0)
                    continue;
                const double denom =
                    static_cast<double>(r.superpageRefs);
                totals.push_back(100.0 * r.superpageRefsTftMiss /
                                 denom);
                hit_rates.push_back(
                    100.0 * r.superpageRefsTftMissL1Hit / denom);
                miss_rates.push_back(
                    100.0 * r.superpageRefsTftMissL1Miss / denom);
            }
            const Summary total = summarize(totals);
            table.addRow({std::to_string(entries) + "-entry",
                          org.label,
                          TableReporter::pct(summarize(hit_rates).avg,
                                             2),
                          TableReporter::pct(summarize(miss_rates).avg,
                                             2),
                          TableReporter::pct(total.avg, 2),
                          TableReporter::pct(total.min, 2),
                          TableReporter::pct(total.max, 2)});
        }
    }
    table.print();

    std::printf("\nShape check (paper): 16 entries keep even the worst "
                "case under ~10%%; 20 entries add little; most TFT "
                "misses are L1 misses anyway.\n");
    return 0;
}
