/**
 * @file
 * Fig 9: avg/min/max percent runtime improvement of SEESAW over
 * baseline VIPT on the in-order (Atom-like) core, across all
 * workloads, for every (cache size, frequency) pair.
 *
 * Expected shape: same trends as Fig 8 but uniformly higher (3-5
 * points) — an in-order pipeline cannot hide L1 latency with
 * independent work.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace seesaw;
    using namespace seesaw::bench;

    printBanner("Fig 9", "% runtime improvement, SEESAW vs baseline "
                         "(in-order), avg/min/max across workloads");

    TableReporter table({"freq", "cache", "avg", "min", "max"});
    double inorder_avg_sum = 0.0, ooo_avg_sum = 0.0;
    int points = 0;
    for (double freq : kFrequencies) {
        for (const auto &org : kCacheOrgs) {
            std::vector<double> ino_gains, ooo_gains;
            for (const auto &w : paperWorkloads()) {
                SystemConfig cfg = makeConfig(org, freq, 200'000);
                cfg.coreKind = CoreKind::InOrder;
                ino_gains.push_back(compareBaselineVsSeesaw(w, cfg)
                                        .runtimeImprovementPct);
                cfg.coreKind = CoreKind::OutOfOrder;
                ooo_gains.push_back(compareBaselineVsSeesaw(w, cfg)
                                        .runtimeImprovementPct);
            }
            const Summary s = summarize(ino_gains);
            inorder_avg_sum += s.avg;
            ooo_avg_sum += summarize(ooo_gains).avg;
            ++points;
            table.addRow({TableReporter::fmt(freq, 2) + "GHz",
                          org.label, TableReporter::pct(s.avg, 1),
                          TableReporter::pct(s.min, 1),
                          TableReporter::pct(s.max, 1)});
        }
    }
    table.print();

    std::printf("\nShape check (paper): in-order benefits exceed "
                "out-of-order by ~3-5 points\n(same frequency caveat "
                "as Fig 8).\n");
    std::printf("  measured: in-order avg %.1f%% vs out-of-order avg "
                "%.1f%% (gap %.1f points)\n",
                inorder_avg_sum / points, ooo_avg_sum / points,
                (inorder_avg_sum - ooo_avg_sum) / points);
    return 0;
}
