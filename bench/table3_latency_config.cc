/**
 * @file
 * Table III: L1 access latencies (cycles) for every evaluated cache
 * size and frequency — baseline (base-page / full-set) vs SEESAW
 * superpage fast path, plus the single-cycle TFT.
 */

#include <cstdio>

#include "bench_common.hh"
#include "model/latency_table.hh"

int
main()
{
    using namespace seesaw;

    printBanner("Table III", "L1 cache configurations: access latency "
                             "(cycles)");

    LatencyTable latency;
    TableReporter table({"Cache", "Assoc", "Freq(GHz)", "TFT",
                         "L1 base-page", "L1 superpage"});
    for (const auto &row : latency.rows()) {
        table.addRow({std::to_string(row.sizeBytes / 1024) + "KB",
                      std::to_string(row.assoc),
                      TableReporter::fmt(row.freqGhz, 2),
                      std::to_string(row.tftCycles),
                      std::to_string(row.basePageCycles),
                      std::to_string(row.superpageCycles)});
    }
    table.print();

    std::printf("\nAnalytical-model fallback for configurations outside "
                "Table III (e.g., Fig 14 PIPT alternatives):\n");
    TableReporter alt({"Cache", "Assoc", "Freq(GHz)", "cycles"});
    for (unsigned assoc : {2u, 4u, 8u}) {
        alt.addRow({"128KB", std::to_string(assoc), "1.33",
                    std::to_string(latency.basePageCycles(
                        128 * 1024, assoc, 1.33))});
    }
    alt.print();
    return 0;
}
