/**
 * @file
 * Fig 2c: L1 access energy (nJ) vs associativity for 16-128KB caches.
 * Expected shape: ~40-50% growth per associativity doubling — much
 * steeper than latency, because synthesis fights timing closure as
 * associativity rises.
 */

#include <cstdio>

#include "bench_common.hh"
#include "model/sram_model.hh"

int
main()
{
    using namespace seesaw;

    printBanner("Fig 2c", "Cache access energy (nJ) vs associativity");

    SramModel sram(TechNode::Intel22);
    const std::uint64_t sizes[] = {16 * 1024, 32 * 1024, 64 * 1024,
                                   128 * 1024};
    const unsigned assocs[] = {1, 2, 4, 8, 16, 32};

    TableReporter table({"cache", "DM", "2-way", "4-way", "8-way",
                         "16-way", "32-way"});
    for (auto size : sizes) {
        std::vector<std::string> row{std::to_string(size / 1024) +
                                     "KB"};
        for (auto assoc : assocs)
            row.push_back(TableReporter::fmt(
                sram.accessEnergyNj(size, assoc), 4));
        table.addRow(row);
    }
    table.print();

    std::printf("\nPer-step growth (paper: ~40-50%% per associativity "
                "doubling):\n");
    for (auto size : sizes) {
        std::printf("  %3lluKB:",
                    static_cast<unsigned long long>(size / 1024));
        for (unsigned a = 2; a <= 32; a *= 2) {
            const double step = sram.accessEnergyNj(size, a) /
                                sram.accessEnergyNj(size, a / 2);
            std::printf(" %+.0f%%", (step - 1.0) * 100.0);
        }
        std::printf("\n");
    }

    std::printf("\nSEESAW partition economics (§IV-A4, 32KB 8-way):\n");
    const double full = sram.accessEnergyNj(32 * 1024, 8);
    const double part = sram.lookupEnergyNj(32 * 1024, 8, 4);
    const double small = sram.accessEnergyNj(16 * 1024, 4);
    std::printf("  full 8-way lookup:        %.4f nJ\n", full);
    std::printf("  4-way partition lookup:   %.4f nJ (%.2f%% below "
                "baseline; paper: 39.43%%)\n",
                part, (1.0 - part / full) * 100.0);
    std::printf("  standalone 16KB 4-way:    %.4f nJ (partition is "
                "+%.2f%%; paper: +0.41%%)\n",
                small, (part / small - 1.0) * 100.0);
    return 0;
}
