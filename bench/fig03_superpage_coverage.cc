/**
 * @file
 * Fig 3: fraction of each workload's memory footprint backed by 2MB
 * superpages, as memhog fragments 0%/40%/60%/80% of physical memory.
 *
 * Expected shape: 65%+ coverage for every workload at low
 * fragmentation (many 80%+); coverage stays ample through memhog 40-60%
 * thanks to compaction, and collapses (but not to zero) at 80%.
 */

#include <cstdio>

#include "bench_common.hh"
#include "mem/memhog.hh"

int
main()
{
    using namespace seesaw;
    using namespace seesaw::bench;

    printBanner("Fig 3",
                "% of memory footprint allocated with 2MB superpages "
                "vs memhog fragmentation");

    const double memhog_levels[] = {0.0, 0.4, 0.6, 0.8};
    TableReporter table({"workload", "memhog(0%)", "memhog(40%)",
                         "memhog(60%)", "memhog(80%)"});

    double sums[4] = {0, 0, 0, 0};
    for (const auto &w : paperWorkloads()) {
        std::vector<std::string> row{w.name};
        int col = 0;
        for (double level : memhog_levels) {
            OsParams params;
            params.memBytes = experimentMemBytes(4ULL << 30);
            params.seed = 0x05eed;
            OsMemoryManager os(params);
            Memhog hog(os);
            hog.consume(level);

            const Asid asid = os.createProcess();
            os.mapAnonymous(asid, Addr{1} << 40, w.footprintBytes,
                            w.thpEligibleFraction);
            const double pct = 100.0 * os.superpageCoverage(asid);
            sums[col++] += pct;
            row.push_back(TableReporter::fmt(pct, 1));
        }
        table.addRow(row);
    }
    {
        std::vector<std::string> row{"average"};
        for (double s : sums)
            row.push_back(
                TableReporter::fmt(s / paperWorkloads().size(), 1));
        table.addRow(row);
    }
    table.print();

    std::printf("\nShape check (paper): >=65%% everywhere at memhog(0); "
                "ample superpages through 40-60%%; collapse only at "
                "80%%+ but never to zero.\n");
    return 0;
}
