/**
 * @file
 * Fig 12: SEESAW's performance and energy benefits under memory
 * fragmentation — memhog holding 0%, 30% and 60% of physical memory
 * (64KB L1, OoO, 1.33GHz; the paper's 8 cloud-centric workloads).
 *
 * Expected shape: benefits shrink with fragmentation but remain
 * clearly positive (~4-6%) even at memhog(60%).
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace seesaw;
    using namespace seesaw::bench;

    printBanner("Fig 12", "Performance/energy benefits vs memhog "
                          "fragmentation (64KB, OoO, 1.33GHz)");

    const double levels[] = {0.0, 0.3, 0.6};
    TableReporter table({"workload", "memhog", "coverage", "perf",
                         "energy"});
    double perf_sums[3] = {0, 0, 0}, energy_sums[3] = {0, 0, 0};
    for (const auto &w : cloudWorkloads()) {
        int col = 0;
        for (double level : levels) {
            SystemConfig cfg = makeConfig(kCacheOrgs[1], 1.33);
            cfg.memhogFraction = level;
            const auto cmp = compareBaselineVsSeesaw(w, cfg);
            perf_sums[col] += cmp.runtimeImprovementPct;
            energy_sums[col] += cmp.energySavedPct;
            ++col;
            table.addRow(
                {w.name,
                 "mh" + std::to_string(static_cast<int>(level * 100)),
                 TableReporter::pct(
                     100.0 * cmp.seesaw.superpageCoverage, 0),
                 TableReporter::pct(cmp.runtimeImprovementPct, 1),
                 TableReporter::pct(cmp.energySavedPct, 1)});
        }
    }
    for (int col = 0; col < 3; ++col) {
        table.addRow(
            {"average",
             "mh" + std::to_string(static_cast<int>(levels[col] * 100)),
             "-",
             TableReporter::pct(perf_sums[col] / cloudWorkloads().size(),
                                1),
             TableReporter::pct(
                 energy_sums[col] / cloudWorkloads().size(), 1)});
    }
    table.print();

    std::printf("\nShape check (paper): benefits decrease with memhog "
                "load but stay positive; OS compaction keeps superpages "
                "ample even at 60%%.\n");
    return 0;
}
