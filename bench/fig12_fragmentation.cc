/**
 * @file
 * Fig 12: SEESAW's performance and energy benefits under memory
 * fragmentation — memhog holding 0%, 30% and 60% of physical memory
 * (64KB L1, OoO, 1.33GHz; the paper's 8 cloud-centric workloads).
 *
 * Runs as a parallel campaign — one cell per (workload, memhog level,
 * design) — archiving results/fig12_fragmentation.{json,csv}.
 *
 * Expected shape: benefits shrink with fragmentation but remain
 * clearly positive (~4-6%) even at memhog(60%).
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace seesaw;
    using namespace seesaw::bench;

    PolicyArgs policy;
    const harness::RunnerOptions options =
        parseBenchArgs(argc, argv, &policy);

    printBanner("Fig 12", "Performance/energy benefits vs memhog "
                          "fragmentation (64KB, OoO, 1.33GHz)");

    const double levels[] = {0.0, 0.3, 0.6};
    const auto level_label = [](double level) {
        return "mh" + std::to_string(static_cast<int>(level * 100));
    };

    harness::CampaignSpec spec("fig12_fragmentation");
    spec.workloads(cloudWorkloads());
    for (double level : levels) {
        SystemConfig cfg = policy.apply(makeConfig(kCacheOrgs[1], 1.33));
        cfg.memhogFraction = level;
        for (L1Kind kind : {L1Kind::ViptBaseline, L1Kind::Seesaw}) {
            spec.variant(level_label(level) + "/" + designLabel(kind),
                         withDesign(cfg, kind));
        }
    }
    const auto outcome = runBenchCampaign(spec, options);

    TableReporter table({"workload", "memhog", "coverage", "perf",
                         "energy"});
    double perf_sums[3] = {0, 0, 0}, energy_sums[3] = {0, 0, 0};
    for (const auto &w : cloudWorkloads()) {
        int col = 0;
        for (double level : levels) {
            const std::string base =
                w.name + "/" + level_label(level) + "/";
            const RunResult &vipt =
                harness::findResult(outcome.results, base + "vipt");
            const RunResult &seesaw =
                harness::findResult(outcome.results, base + "seesaw");
            const double perf =
                runtimeImprovementPercent(vipt, seesaw);
            const double energy = energySavedPercent(vipt, seesaw);
            perf_sums[col] += perf;
            energy_sums[col] += energy;
            ++col;
            table.addRow(
                {w.name, level_label(level),
                 TableReporter::pct(100.0 * seesaw.superpageCoverage,
                                    0),
                 TableReporter::pct(perf, 1),
                 TableReporter::pct(energy, 1)});
        }
    }
    for (int col = 0; col < 3; ++col) {
        table.addRow(
            {"average", level_label(levels[col]), "-",
             TableReporter::pct(perf_sums[col] / cloudWorkloads().size(),
                                1),
             TableReporter::pct(
                 energy_sums[col] / cloudWorkloads().size(), 1)});
    }
    table.print();

    std::printf("\nShape check (paper): benefits decrease with memhog "
                "load but stay positive; OS compaction keeps superpages "
                "ample even at 60%%.\n");
    return 0;
}
