/**
 * @file
 * Fig 10: percent of whole-memory-hierarchy energy saved by SEESAW vs
 * baseline VIPT, avg/min/max across workloads, for in-order and
 * out-of-order cores at every (cache size, frequency) pair.
 *
 * Expected shape: always positive, roughly 10-20%; in-order saves
 * slightly more (it also runs proportionally faster, cutting leakage).
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace seesaw;
    using namespace seesaw::bench;

    printBanner("Fig 10", "% memory-hierarchy energy saved by SEESAW "
                          "(InO and OoO)");

    TableReporter table({"core", "freq", "cache", "avg", "min", "max"});
    for (CoreKind core : {CoreKind::InOrder, CoreKind::OutOfOrder}) {
        for (double freq : kFrequencies) {
            for (const auto &org : kCacheOrgs) {
                std::vector<double> saved;
                for (const auto &w : paperWorkloads()) {
                    SystemConfig cfg = makeConfig(org, freq, 200'000);
                    cfg.coreKind = core;
                    saved.push_back(compareBaselineVsSeesaw(w, cfg)
                                        .energySavedPct);
                }
                const Summary s = summarize(saved);
                table.addRow(
                    {core == CoreKind::InOrder ? "InO" : "OOO",
                     TableReporter::fmt(freq, 2) + "GHz", org.label,
                     TableReporter::pct(s.avg, 1),
                     TableReporter::pct(s.min, 1),
                     TableReporter::pct(s.max, 1)});
            }
        }
    }
    table.print();

    std::printf("\nShape check (paper): SEESAW always saves memory-"
                "hierarchy energy; in-order slightly ahead of "
                "out-of-order.\n");
    return 0;
}
