/**
 * @file
 * Fig 10: percent of whole-memory-hierarchy energy saved by SEESAW vs
 * baseline VIPT, avg/min/max across workloads, for in-order and
 * out-of-order cores at every (cache size, frequency) pair.
 *
 * Runs as a parallel campaign — one cell per (workload, core, freq,
 * org, design), 1152 cells total — and archives every RunResult to
 * results/fig10_energy.{json,csv} beside the printed table.
 *
 * Expected shape: always positive, roughly 10-20%; in-order saves
 * slightly more (it also runs proportionally faster, cutting leakage).
 */

#include <cstdio>

#include "bench_common.hh"

namespace {

const char *
coreLabel(seesaw::CoreKind core)
{
    return core == seesaw::CoreKind::InOrder ? "ino" : "ooo";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace seesaw;
    using namespace seesaw::bench;

    PolicyArgs policy;
    const harness::RunnerOptions options =
        parseBenchArgs(argc, argv, &policy);

    printBanner("Fig 10", "% memory-hierarchy energy saved by SEESAW "
                          "(InO and OoO)");

    harness::CampaignSpec spec("fig10_energy");
    spec.workloads(paperWorkloads());
    for (CoreKind core : {CoreKind::InOrder, CoreKind::OutOfOrder}) {
        for (double freq : kFrequencies) {
            for (const auto &org : kCacheOrgs) {
                SystemConfig cfg =
                    policy.apply(makeConfig(org, freq, 200'000));
                cfg.coreKind = core;
                const std::string point =
                    std::string(coreLabel(core)) + "/" +
                    TableReporter::fmt(freq, 2) + "GHz/" + org.label;
                for (L1Kind kind :
                     {L1Kind::ViptBaseline, L1Kind::Seesaw}) {
                    spec.variant(point + "/" + designLabel(kind),
                                 withDesign(cfg, kind));
                }
            }
        }
    }
    const auto outcome = runBenchCampaign(spec, options);

    TableReporter table({"core", "freq", "cache", "avg", "min", "max"});
    for (CoreKind core : {CoreKind::InOrder, CoreKind::OutOfOrder}) {
        for (double freq : kFrequencies) {
            for (const auto &org : kCacheOrgs) {
                const std::string point =
                    std::string(coreLabel(core)) + "/" +
                    TableReporter::fmt(freq, 2) + "GHz/" + org.label;
                std::vector<double> saved;
                for (const auto &w : paperWorkloads()) {
                    const std::string base =
                        w.name + "/" + point + "/";
                    saved.push_back(energySavedPercent(
                        harness::findResult(outcome.results,
                                            base + "vipt"),
                        harness::findResult(outcome.results,
                                            base + "seesaw")));
                }
                const Summary s = summarize(saved);
                table.addRow(
                    {core == CoreKind::InOrder ? "InO" : "OOO",
                     TableReporter::fmt(freq, 2) + "GHz", org.label,
                     TableReporter::pct(s.avg, 1),
                     TableReporter::pct(s.min, 1),
                     TableReporter::pct(s.max, 1)});
            }
        }
    }
    table.print();

    std::printf("\nShape check (paper): SEESAW always saves memory-"
                "hierarchy energy; in-order slightly ahead of "
                "out-of-order.\n");
    return 0;
}
