/**
 * @file
 * Extension study (§V): applying SEESAW to the L1 instruction cache.
 * The paper applies SEESAW to the data cache and notes the I-side
 * "may be valuable with the advent of cloud workloads that use
 * considerably larger instruction-side footprints". This bench
 * quantifies the *additional* benefit the I-side application brings,
 * for small-text SPEC workloads vs large-text cloud workloads.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace seesaw;
    using namespace seesaw::bench;

    printBanner("Extension: L1I application",
                "D-side only vs D+I SEESAW (32KB L1I, OoO, 1.33GHz)");

    TableReporter table({"workload", "text", "L1I hitrate",
                         "perf D-only", "perf D+I", "energy D-only",
                         "energy D+I"});

    const char *names[] = {"astar", "omnet", "redis", "tunk",
                           "nutch", "olio", "mongo"};
    for (const char *name : names) {
        const WorkloadSpec &w = findWorkload(name);

        // All runs model the I-cache so fetch traffic is identical;
        // only the cache designs under test change.
        SystemConfig cfg = makeConfig(kCacheOrgs[1], 1.33, 200'000);
        cfg.modelInstructionCache = true;

        // A: VIPT D + VIPT I (the baseline).
        cfg.l1Kind = L1Kind::ViptBaseline;
        const RunResult base = simulate(w, cfg);

        // B: SEESAW D + VIPT I (the paper's evaluated design).
        cfg.l1Kind = L1Kind::Seesaw;
        cfg.icacheKind = SystemConfig::ICacheKind::Vipt;
        const RunResult d_see = simulate(w, cfg);

        // C: SEESAW D + SEESAW I (the §V extension).
        cfg.icacheKind = SystemConfig::ICacheKind::Seesaw;
        const RunResult both = simulate(w, cfg);
        const RunResult &d_base = base;

        const double l1i_hit =
            both.l1iAccesses
                ? 100.0 * (both.l1iAccesses - both.l1iMisses) /
                      both.l1iAccesses
                : 0.0;
        table.addRow(
            {name,
             std::to_string(w.codeFootprintBytes >> 20) + "MB",
             TableReporter::pct(l1i_hit, 1),
             TableReporter::pct(
                 runtimeImprovementPercent(d_base, d_see), 2),
             TableReporter::pct(runtimeImprovementPercent(base, both),
                                2),
             TableReporter::pct(energySavedPercent(d_base, d_see), 2),
             TableReporter::pct(energySavedPercent(base, both), 2)});
        (void)d_base;
    }
    table.print();

    std::printf("\nShape check (paper §V): the I-side application adds "
                "energy savings on top of the D-side ones, and the "
                "large-text cloud workloads (16-32MB) gain the most — "
                "the case the paper flags.\n");
    return 0;
}
