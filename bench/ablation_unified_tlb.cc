/**
 * @file
 * Extension study (Fig 4's note): SEESAW under an ARM/SPARC-style
 * fully-associative unified L1 TLB instead of Intel-style split L1
 * TLBs. The TFT is driven by the same superpage-fill signal either
 * way; the benefit should survive the organisation change.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace seesaw;
    using namespace seesaw::bench;

    printBanner("Extension: unified L1 TLB",
                "split vs fully-associative unified (64KB, OoO, "
                "1.33GHz)");

    struct Org
    {
        const char *label;
        bool unified;
        unsigned entries;
    };
    const Org orgs[] = {
        {"split (Sandybridge)", false, 0},
        {"unified 32-entry", true, 32},
        {"unified 64-entry", true, 64},
        {"unified 128-entry", true, 128},
    };

    TableReporter table({"TLB", "perf avg", "energy avg",
                         "TFT miss avg"});
    for (const auto &org : orgs) {
        std::vector<double> perfs, energies, misses;
        for (const auto &w : cloudWorkloads()) {
            SystemConfig cfg = makeConfig(kCacheOrgs[1], 1.33,
                                          150'000);
            cfg.unifiedL1Tlb = org.unified;
            cfg.unifiedL1TlbEntries = org.entries ? org.entries : 64;
            const auto cmp = compareBaselineVsSeesaw(w, cfg);
            perfs.push_back(cmp.runtimeImprovementPct);
            energies.push_back(cmp.energySavedPct);
            if (cmp.seesaw.superpageRefs > 0) {
                misses.push_back(
                    100.0 * cmp.seesaw.superpageRefsTftMiss /
                    cmp.seesaw.superpageRefs);
            }
        }
        table.addRow({org.label,
                      TableReporter::pct(summarize(perfs).avg, 2),
                      TableReporter::pct(summarize(energies).avg, 2),
                      TableReporter::pct(summarize(misses).avg, 2)});
    }
    table.print();

    std::printf("\nShape check (paper, Fig 4): SEESAW is \"amenable to "
                "both split TLB and unified TLB configurations\" — the "
                "benefit persists across organisations.\n");
    return 0;
}
