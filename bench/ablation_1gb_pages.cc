/**
 * @file
 * Extension study (§IV): 1GB superpages. The paper focuses on 2MB
 * pages because transparent 1GB support is immature, but notes the
 * approach "generalizes readily to 1GB superpages too". This bench
 * backs the heap with explicit (hugetlbfs-style) 1GB pages and
 * compares against THP-2MB and base-page-only heaps: with 30 offset
 * bits, every access inside a 1GB page takes the fast partition path,
 * and the TFT marks the accessed 2MB regions exactly as for 2MB pages.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace seesaw;
    using namespace seesaw::bench;

    printBanner("Extension: 1GB superpages",
                "base-only vs THP-2MB vs 1GB heap (64KB, OoO, "
                "1.33GHz)");

    struct Mode
    {
        const char *label;
        bool thp;
        bool one_gb;
    };
    const Mode modes[] = {
        {"4KB only", false, false},
        {"THP 2MB", true, false},
        {"1GB pages", true, true},
    };

    TableReporter table({"workload", "heap", "superpage refs",
                         "TFT hitrate", "perf", "energy"});
    for (const char *name : {"redis", "mongo", "g500", "mcf"}) {
        const WorkloadSpec &w = findWorkload(name);
        for (const auto &mode : modes) {
            SystemConfig cfg = makeConfig(kCacheOrgs[1], 1.33,
                                          150'000);
            cfg.os.thpEnabled = mode.thp;
            cfg.useOneGbHeap = mode.one_gb;
            cfg.os.memBytes =
                std::max<std::uint64_t>(cfg.os.memBytes, 4ULL << 30);
            if (mode.one_gb) {
                // 1GB pages are reserved at boot (hugetlbfs) before
                // kernel allocations fragment gigabyte contiguity.
                cfg.os.kernelReservedFraction = 0.0;
                cfg.os.pollutedRegionFraction = 0.0;
            }
            const auto cmp = compareBaselineVsSeesaw(w, cfg);
            const double tft_hit =
                cmp.seesaw.tftLookups
                    ? 100.0 * cmp.seesaw.tftHits /
                          cmp.seesaw.tftLookups
                    : 0.0;
            table.addRow(
                {name, mode.label,
                 TableReporter::pct(
                     100.0 * cmp.seesaw.superpageRefFraction, 1),
                 TableReporter::pct(tft_hit, 1),
                 TableReporter::pct(cmp.runtimeImprovementPct, 2),
                 TableReporter::pct(cmp.energySavedPct, 2)});
        }
    }
    table.print();

    std::printf(
        "\nShape check: 1GB pages match or beat THP-2MB (fewer TLB "
        "misses, full fast-path\ncoverage). The 4KB-only rows expose "
        "the 4way insertion policy's ~1%% hit-rate\ncost with nothing "
        "to offset it — the paper's superpage-present figures never "
        "hit\nthis corner, and production systems always have some "
        "superpages (Fig 3).\n");
    return 0;
}
