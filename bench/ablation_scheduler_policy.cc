/**
 * @file
 * Ablation (§IV-B3): the out-of-order scheduler's superpage-TLB
 * occupancy counter. With the policy on, the scheduler assumes the
 * fast hit time only while the 2MB L1 TLB is at least a quarter full;
 * with it off, it always assumes fast and pays squash-and-replay for
 * every slow hit when superpages are scarce.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace seesaw;
    using namespace seesaw::bench;

    printBanner("Ablation: scheduler counter policy",
                "always-assume-fast vs occupancy-gated (64KB, OoO)");

    TableReporter table({"memhog", "policy", "squashes/kinstr",
                         "cycles", "perf vs baseline"});
    for (double memhog : {0.0, 0.9}) {
        for (bool policy : {true, false}) {
            double squash_rate = 0.0, perf = 0.0, cycles = 0.0;
            for (const auto &w : cloudWorkloads()) {
                WorkloadSpec spec = w;
                spec.thpEligibleFraction *= memhog > 0.0 ? 0.7 : 1.0;
                SystemConfig cfg = makeConfig(kCacheOrgs[1], 1.33,
                                              150'000);
                cfg.memhogFraction = memhog;
                cfg.schedulerCounterPolicy = policy;
                const RunResult r = simulate(spec, cfg);
                SystemConfig base_cfg = cfg;
                base_cfg.l1Kind = L1Kind::ViptBaseline;
                const RunResult base = simulate(spec, base_cfg);
                squash_rate += 1000.0 * r.squashes / r.instructions;
                perf += runtimeImprovementPercent(base, r);
                cycles += static_cast<double>(r.cycles);
            }
            const auto n = cloudWorkloads().size();
            table.addRow(
                {"mh" + std::to_string(static_cast<int>(memhog * 100)),
                 policy ? "gated" : "always-fast",
                 TableReporter::fmt(squash_rate / n, 2),
                 TableReporter::fmt(cycles / n, 0),
                 TableReporter::pct(perf / n, 2)});
        }
    }
    table.print();

    std::printf("\nShape check: with ample superpages the two policies "
                "tie; under heavy fragmentation the gated policy avoids "
                "chronic squashing and runs faster.\n");
    return 0;
}
