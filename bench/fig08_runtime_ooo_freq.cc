/**
 * @file
 * Fig 8: avg/min/max percent runtime improvement of SEESAW over
 * baseline VIPT on the out-of-order core, across all workloads, for
 * every (cache size, frequency) pair.
 *
 * Expected shape: benefits grow with both cache size and clock
 * frequency (the baseline full-set access takes more cycles).
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace seesaw;
    using namespace seesaw::bench;

    printBanner("Fig 8", "% runtime improvement, SEESAW vs baseline "
                         "(OoO), avg/min/max across workloads");

    TableReporter table({"freq", "cache", "avg", "min", "max"});
    for (double freq : kFrequencies) {
        for (const auto &org : kCacheOrgs) {
            std::vector<double> gains;
            for (const auto &w : paperWorkloads()) {
                SystemConfig cfg = makeConfig(org, freq, 200'000);
                gains.push_back(compareBaselineVsSeesaw(w, cfg)
                                    .runtimeImprovementPct);
            }
            const Summary s = summarize(gains);
            table.addRow({TableReporter::fmt(freq, 2) + "GHz",
                          org.label, TableReporter::pct(s.avg, 1),
                          TableReporter::pct(s.min, 1),
                          TableReporter::pct(s.max, 1)});
        }
    }
    table.print();

    std::printf(
        "\nShape check (paper): improvement rises with cache size at "
        "every frequency.\nKnown divergence: the paper also reports "
        "gains rising with frequency; here fixed-ns\nouter-memory "
        "penalties consume more cycles at higher clocks, diluting the "
        "percentage\n(our workload models carry higher MPKI than the "
        "paper's traces).\n");
    return 0;
}
