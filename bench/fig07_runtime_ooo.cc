/**
 * @file
 * Fig 7: per-workload percent runtime improvement of SEESAW over
 * baseline VIPT on the out-of-order core at 1.33GHz, for 32KB, 64KB
 * and 128KB L1 caches.
 *
 * Runs as a parallel campaign (SEESAW_JOBS workers) — one cell per
 * (workload, cache org, design) — and archives every RunResult to
 * results/fig07_runtime_ooo.{json,csv} beside the printed table.
 *
 * Expected shape: every workload improves; bigger caches improve more
 * (their baseline full-set hit is slower); cloud workloads (redis,
 * olio, tunk, mongo) are among the biggest winners; averages 5-11%.
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace seesaw;
    using namespace seesaw::bench;

    PolicyArgs policy;
    const harness::RunnerOptions options =
        parseBenchArgs(argc, argv, &policy);

    printBanner("Fig 7", "% runtime improvement, SEESAW vs baseline "
                         "VIPT (OoO, 1.33GHz)");

    harness::CampaignSpec spec("fig07_runtime_ooo");
    spec.workloads(paperWorkloads());
    for (const auto &org : kCacheOrgs) {
        const SystemConfig cfg = policy.apply(makeConfig(org, 1.33));
        for (L1Kind kind : {L1Kind::ViptBaseline, L1Kind::Seesaw}) {
            spec.variant(std::string(org.label) + "/" +
                             designLabel(kind),
                         withDesign(cfg, kind));
        }
    }
    const auto outcome = runBenchCampaign(spec, options);

    TableReporter table({"workload", "32KB", "64KB", "128KB"});
    double sums[3] = {0, 0, 0};
    for (const auto &w : paperWorkloads()) {
        std::vector<std::string> row{w.name};
        int col = 0;
        for (const auto &org : kCacheOrgs) {
            const std::string base = w.name + "/" + org.label + "/";
            const double improvement = runtimeImprovementPercent(
                harness::findResult(outcome.results, base + "vipt"),
                harness::findResult(outcome.results, base + "seesaw"));
            sums[col++] += improvement;
            row.push_back(TableReporter::pct(improvement, 1));
        }
        table.addRow(row);
    }
    {
        std::vector<std::string> row{"average"};
        for (double s : sums)
            row.push_back(
                TableReporter::pct(s / paperWorkloads().size(), 1));
        table.addRow(row);
    }
    table.print();

    std::printf("\nShape check (paper): all positive; improvement grows "
                "with cache size; averages 5-11%% across 32-128KB.\n");
    return 0;
}
