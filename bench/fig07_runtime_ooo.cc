/**
 * @file
 * Fig 7: per-workload percent runtime improvement of SEESAW over
 * baseline VIPT on the out-of-order core at 1.33GHz, for 32KB, 64KB
 * and 128KB L1 caches.
 *
 * Expected shape: every workload improves; bigger caches improve more
 * (their baseline full-set hit is slower); cloud workloads (redis,
 * olio, tunk, mongo) are among the biggest winners; averages 5-11%.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace seesaw;
    using namespace seesaw::bench;

    printBanner("Fig 7", "% runtime improvement, SEESAW vs baseline "
                         "VIPT (OoO, 1.33GHz)");

    TableReporter table({"workload", "32KB", "64KB", "128KB"});
    double sums[3] = {0, 0, 0};
    for (const auto &w : paperWorkloads()) {
        std::vector<std::string> row{w.name};
        int col = 0;
        for (const auto &org : kCacheOrgs) {
            SystemConfig cfg = makeConfig(org, 1.33);
            const auto cmp = compareBaselineVsSeesaw(w, cfg);
            sums[col++] += cmp.runtimeImprovementPct;
            row.push_back(
                TableReporter::pct(cmp.runtimeImprovementPct, 1));
        }
        table.addRow(row);
    }
    {
        std::vector<std::string> row{"average"};
        for (double s : sums)
            row.push_back(
                TableReporter::pct(s / paperWorkloads().size(), 1));
        table.addRow(row);
    }
    table.print();

    std::printf("\nShape check (paper): all positive; improvement grows "
                "with cache size; averages 5-11%% across 32-128KB.\n");
    return 0;
}
