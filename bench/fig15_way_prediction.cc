/**
 * @file
 * Fig 15: way prediction (WP), SEESAW, and WP+SEESAW combined —
 * percent performance and energy improvement over the baseline 64KB
 * VIPT cache at 1.33GHz, for the 8 cloud workloads.
 *
 * Expected shape: WP alone saves energy but *degrades* performance on
 * poor-locality workloads (graph500, olio); SEESAW never degrades
 * performance; WP+SEESAW saves the most energy.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace seesaw;
    using namespace seesaw::bench;

    printBanner("Fig 15", "Way prediction vs SEESAW vs WP+SEESAW "
                          "(64KB, OoO, 1.33GHz)");

    TableReporter table({"workload", "design", "perf", "energy",
                         "WP accuracy"});
    int wp_degrades = 0, seesaw_degrades = 0, combined_best_energy = 0;
    for (const auto &w : cloudWorkloads()) {
        SystemConfig cfg = makeConfig(kCacheOrgs[1], 1.33);
        cfg.l1Kind = L1Kind::ViptBaseline;
        const RunResult base = simulate(w, cfg);

        struct Design
        {
            const char *label;
            L1Kind kind;
        };
        const Design designs[] = {
            {"WP", L1Kind::ViptWayPredicted},
            {"SEESAW", L1Kind::Seesaw},
            {"WP+SEESAW", L1Kind::SeesawWayPredicted},
        };
        double energies[3], perfs[3];
        int i = 0;
        for (const auto &d : designs) {
            cfg.l1Kind = d.kind;
            const RunResult r = simulate(w, cfg);
            perfs[i] = runtimeImprovementPercent(base, r);
            energies[i] = energySavedPercent(base, r);
            table.addRow({w.name, d.label,
                          TableReporter::pct(perfs[i], 1),
                          TableReporter::pct(energies[i], 1),
                          r.wpAccuracy > 0.0
                              ? TableReporter::pct(
                                    100.0 * r.wpAccuracy, 0)
                              : std::string("-")});
            ++i;
        }
        wp_degrades += perfs[0] < 0.0 ? 1 : 0;
        seesaw_degrades += perfs[1] < -0.25 ? 1 : 0;
        combined_best_energy +=
            (energies[2] >= energies[0] && energies[2] >= energies[1])
                ? 1
                : 0;
    }
    table.print();

    std::printf("\nShape check (paper): WP alone degrades performance "
                "for poor-locality workloads (%d/8 here); SEESAW never "
                "does (%d/8 degraded); WP+SEESAW yields the best energy "
                "savings (%d/8 workloads).\n",
                wp_degrades, seesaw_degrades, combined_best_energy);
    return 0;
}
