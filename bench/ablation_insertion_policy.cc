/**
 * @file
 * Ablation (§IV-B1): `4way` vs `4way-8way` insertion policies.
 *
 * The paper picked 4way for correctness (no duplicate installs under
 * base/super aliasing), cheaper installs, partition-scoped coherence,
 * and a hit-rate cost of only ~1%. This bench quantifies the hit-rate
 * delta and the coherence-energy gap between the two policies.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace seesaw;
    using namespace seesaw::bench;

    printBanner("Ablation: insertion policy",
                "4way vs 4way-8way (64KB, OoO, 1.33GHz)");

    TableReporter table({"workload", "memhog", "hitrate 4way",
                         "hitrate 4w-8w", "delta",
                         "coh energy 4way(nJ)",
                         "coh energy 4w-8w(nJ)"});
    double worst_delta = 0.0;
    for (const auto &w : cloudWorkloads()) {
        // The policies only diverge on base-page insertions, so sweep
        // fragmentation: memhog(60%) forces a real base-page mix.
        for (double memhog : {0.0, 0.6}) {
            SystemConfig cfg = makeConfig(kCacheOrgs[1], 1.33);
            cfg.memhogFraction = memhog;
            cfg.policy = InsertionPolicy::FourWay;
            const RunResult four = simulate(w, cfg);
            cfg.policy = InsertionPolicy::FourWayEightWay;
            const RunResult four_eight = simulate(w, cfg);

            const double hr4 = 100.0 * four.l1Hits /
                               static_cast<double>(four.l1Accesses);
            const double hr48 =
                100.0 * four_eight.l1Hits /
                static_cast<double>(four_eight.l1Accesses);
            worst_delta = std::max(worst_delta, hr48 - hr4);
            table.addRow(
                {w.name,
                 "mh" + std::to_string(static_cast<int>(memhog * 100)),
                 TableReporter::pct(hr4, 2),
                 TableReporter::pct(hr48, 2),
                 TableReporter::fmt(hr48 - hr4, 3),
                 TableReporter::fmt(four.l1CoherenceDynamicNj, 0),
                 TableReporter::fmt(four_eight.l1CoherenceDynamicNj,
                                    0)});
        }
    }
    table.print();

    std::printf("\nShape check (paper): hit-rate cost of 4way is ~1%% "
                "at most (worst here: %.2f points), while 4way keeps "
                "coherence probes at 4-way cost.\n",
                worst_delta);
    return 0;
}
