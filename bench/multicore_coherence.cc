/**
 * @file
 * Multi-core validation of the Fig 11 coherence story with *exact*
 * directory coherence: N threads of a multi-threaded workload run one
 * per core over a shared heap; every probe corresponds to a real
 * remote copy. Reports, per core count and design, the probe load,
 * the per-probe energy gap (§IV-C1: 4-way vs full-set lookups) and
 * the share of SEESAW's L1 energy savings that coherence contributes.
 *
 * Runs as a parallel campaign of explicit cells — one SimEngine per
 * (workload, cores, design) — archiving every native RunResult to
 * results/multicore_coherence.{json,csv}.
 */

#include <cstdio>

#include "bench_common.hh"
#include "sim/sim_engine.hh"

int
main()
{
    using namespace seesaw;
    using namespace seesaw::bench;

    printBanner("Multi-core coherence",
                "exact-directory MOESI, threads sharing one heap "
                "(64KB L1s, OoO, 1.33GHz)");

    const char *names[] = {"tunk", "cann", "g500"};
    const unsigned core_counts[] = {2u, 4u, 8u, 16u};

    harness::CampaignSpec spec("multicore_coherence");
    for (const char *name : names) {
        const WorkloadSpec &w = findWorkload(name);
        for (unsigned cores : core_counts) {
            SystemConfig cfg;
            cfg.cores = cores;
            cfg.l1SizeBytes = 64 * 1024;
            cfg.l1Assoc = 16;
            cfg.instructions = experimentInstructions(60'000);
            cfg.warmupInstructions = 30'000;
            cfg.os.memBytes = experimentMemBytes(4ULL << 30);
            cfg.seed = 1;

            for (L1Kind kind :
                 {L1Kind::ViptBaseline, L1Kind::Seesaw}) {
                cfg.l1Kind = kind;
                const std::string cell_name =
                    std::string(name) + "/c" + std::to_string(cores) +
                    "/" + designLabel(kind);
                spec.cell(
                    cell_name,
                    [cfg, w] { return SimEngine(cfg, w).run(); },
                    cfg.seed);
            }
        }
    }
    const auto outcome = runBenchCampaign(spec);

    TableReporter table({"workload", "cores", "probes/kinstr",
                         "c2c/kinstr", "coh energy share",
                         "coh savings share", "speedup"});

    for (const char *name : names) {
        for (unsigned cores : core_counts) {
            const std::string base = std::string(name) + "/c" +
                                     std::to_string(cores) + "/";
            const RunResult &vipt =
                harness::findResult(outcome.results, base + "vipt");
            const RunResult &see =
                harness::findResult(outcome.results, base + "seesaw");

            const double kinstr = see.instructions / 1000.0;
            const double coh_share =
                100.0 * see.l1CoherenceDynamicNj /
                (see.l1CoherenceDynamicNj + see.l1CpuDynamicNj);
            const double coh_saved = vipt.l1CoherenceDynamicNj -
                                     see.l1CoherenceDynamicNj;
            const double cpu_saved =
                vipt.l1CpuDynamicNj - see.l1CpuDynamicNj;
            const double savings_share =
                100.0 * coh_saved / (coh_saved + cpu_saved);
            const double speedup =
                100.0 *
                (static_cast<double>(vipt.cycles) - see.cycles) /
                vipt.cycles;

            table.addRow(
                {name, std::to_string(cores),
                 TableReporter::fmt(see.probes / kinstr, 1),
                 TableReporter::fmt(see.ownerSupplies / kinstr, 2),
                 TableReporter::pct(coh_share, 1),
                 TableReporter::pct(savings_share, 1),
                 TableReporter::pct(speedup, 1)});
        }
    }
    table.print();

    std::printf(
        "\nShape check (Fig 11 / §VI-B): coherence's share of the L1 "
        "energy savings grows\nwith core count and reaches roughly a "
        "third for the heavily-shared workloads\n(tunkrank, canneal); "
        "the per-probe saving is the fixed 4-way vs full-set gap.\n");
    return 0;
}
