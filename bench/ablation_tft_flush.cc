/**
 * @file
 * Ablation (§IV-C3): the cost of a TFT without ASID tags.
 *
 * The paper found ASID-tagging the TFT nearly doubles its area while
 * flushing it on every context switch costs <1% performance. This
 * bench sweeps the context-switch interval (including "never", the
 * ASID-tagged ideal) and reports SEESAW's benefit at each point.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace seesaw;
    using namespace seesaw::bench;

    printBanner("Ablation: TFT flush on context switch",
                "flush interval sweep (64KB, OoO, 1.33GHz)");

    struct Point
    {
        std::uint64_t interval;
        const char *label;
    };
    const Point points[] = {
        {0, "never (ASID-tagged ideal)"},
        {1'000'000, "1M instr"},
        {100'000, "100K instr"},
        {20'000, "20K instr (pathological)"},
    };

    TableReporter table({"flush interval", "perf vs baseline",
                         "TFT miss rate", "loss vs ideal"});
    double ideal = 0.0;
    for (const auto &p : points) {
        double perf = 0.0, tft_miss = 0.0;
        for (const auto &w : cloudWorkloads()) {
            SystemConfig cfg = makeConfig(kCacheOrgs[1], 1.33,
                                          200'000);
            cfg.contextSwitchInterval = p.interval;
            const auto cmp = compareBaselineVsSeesaw(w, cfg);
            perf += cmp.runtimeImprovementPct;
            if (cmp.seesaw.superpageRefs > 0) {
                tft_miss += 100.0 * cmp.seesaw.superpageRefsTftMiss /
                            cmp.seesaw.superpageRefs;
            }
        }
        const auto n = cloudWorkloads().size();
        perf /= n;
        tft_miss /= n;
        if (p.interval == 0)
            ideal = perf;
        table.addRow({p.label, TableReporter::pct(perf, 2),
                      TableReporter::pct(tft_miss, 2),
                      TableReporter::fmt(ideal - perf, 3)});
    }
    table.print();

    std::printf("\nShape check (paper): at realistic context-switch "
                "rates the non-ASID TFT loses <1%% of total performance "
                "vs the ASID-tagged ideal — not worth doubling the "
                "86-byte structure.\n");
    return 0;
}
