/**
 * @file
 * Extension study (§IV-A2): TFT geometry. The paper uses a 16-entry
 * direct-mapped TFT and notes set-associative implementations are
 * possible. This bench sweeps entry count and associativity and
 * reports the superpage-access miss rate, storage cost and runtime
 * benefit — showing why 16x1 is the sweet spot the paper picked.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/tft.hh"

int
main()
{
    using namespace seesaw;
    using namespace seesaw::bench;

    printBanner("Extension: TFT geometry",
                "entries x associativity sweep (32KB L1, OoO, "
                "1.33GHz)");

    TableReporter table({"TFT", "storage(B)", "miss avg", "miss max",
                         "perf vs baseline"});
    for (unsigned entries : {8u, 12u, 16u, 20u, 32u}) {
        for (unsigned assoc : {1u, 2u, 4u}) {
            if (entries % assoc != 0)
                continue;
            std::vector<double> misses, perfs;
            for (const auto &w : cloudWorkloads()) {
                SystemConfig cfg = makeConfig(kCacheOrgs[0], 1.33,
                                              150'000);
                cfg.tftEntries = entries;
                cfg.tftAssoc = assoc;
                const auto cmp = compareBaselineVsSeesaw(w, cfg);
                if (cmp.seesaw.superpageRefs > 0) {
                    misses.push_back(
                        100.0 * cmp.seesaw.superpageRefsTftMiss /
                        cmp.seesaw.superpageRefs);
                }
                perfs.push_back(cmp.runtimeImprovementPct);
            }
            const Tft probe(entries, assoc);
            const Summary miss = summarize(misses);
            table.addRow({std::to_string(entries) + "x" +
                              std::to_string(assoc),
                          TableReporter::fmt(probe.storageBytes(), 0),
                          TableReporter::pct(miss.avg, 2),
                          TableReporter::pct(miss.max, 2),
                          TableReporter::pct(summarize(perfs).avg,
                                             2)});
        }
    }
    table.print();

    std::printf("\nShape check (paper): 16 direct-mapped entries (86B) "
                "already capture the vast majority of superpage "
                "accesses; bigger or associative TFTs buy little.\n");
    return 0;
}
