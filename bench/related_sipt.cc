/**
 * @file
 * Related-work comparison (§VII): SEESAW vs SIPT (speculatively
 * indexed, physically tagged — Zheng et al., HPCA'18), the design the
 * paper calls "closest in spirit". SIPT breaks the VIPT ceiling with
 * more sets and speculation+rollback; SEESAW with way filtering and a
 * guarantee (the TFT never mispredicts). This bench compares both
 * against the VIPT baseline and shows where each benefit comes from.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace seesaw;
    using namespace seesaw::bench;

    printBanner("Related work: SIPT",
                "SEESAW vs speculative indexing (OoO, 1.33GHz)");

    TableReporter table({"cache", "workload", "design", "perf",
                         "energy", "notes"});
    for (const auto &org : {kCacheOrgs[0], kCacheOrgs[2]}) {
        for (const char *name : {"redis", "mcf", "omnet"}) {
            const WorkloadSpec &w = findWorkload(name);
            SystemConfig cfg = makeConfig(org, 1.33, 150'000);

            cfg.l1Kind = L1Kind::ViptBaseline;
            const RunResult base = simulate(w, cfg);

            cfg.l1Kind = L1Kind::Seesaw;
            const RunResult see = simulate(w, cfg);
            table.addRow(
                {org.label, name, "SEESAW",
                 TableReporter::pct(
                     runtimeImprovementPercent(base, see), 2),
                 TableReporter::pct(energySavedPercent(base, see), 2),
                 "guaranteed fast path"});

            // One speculative index bit: half the baseline's ways,
            // twice its sets — the gentlest SIPT configuration.
            cfg.l1Kind = L1Kind::Sipt;
            cfg.siptAssoc = org.assoc / 2;
            const RunResult sipt = simulate(w, cfg);
            table.addRow(
                {org.label, name,
                 "SIPT " + std::to_string(org.assoc / 2) + "-way",
                 TableReporter::pct(
                     runtimeImprovementPercent(base, sipt), 2),
                 TableReporter::pct(energySavedPercent(base, sipt), 2),
                 "speculation + rollback"});
        }
    }
    table.print();

    std::printf(
        "\nReading the table: both designs escape the VIPT ceiling. "
        "SIPT can be strong when\nits per-page bit predictor is warm "
        "(pages keep their frames), but every cold or\nmigrated page "
        "pays a rollback squash, its fast path rests on speculation "
        "rather\nthan a guarantee, and hit rates drop at the low "
        "associativity that speculative\nindexing requires — the "
        "complexity/robustness contrast §VII draws.\n");
    return 0;
}
