/**
 * @file
 * Fig 2a: average L1 MPKI as a function of associativity (DM to
 * 32-way) for 16KB-256KB caches, over the paper's 16 workloads.
 *
 * Expected shape: MPKI drops steeply from direct-mapped to 4-way
 * (conflict misses), then flattens — L1s become capacity-limited, so
 * further associativity buys almost nothing.
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"
#include "cache/set_assoc_cache.hh"
#include "workload/reference_stream.hh"

namespace {

using namespace seesaw;

/** Simulate one workload's reference stream through a bare tag store
 *  and return MPKI. Addresses are used verbatim (VA==PA): Fig 2a is a
 *  pure cache-content study. */
double
measureMpki(const WorkloadSpec &spec, std::uint64_t size_bytes,
            unsigned assoc, std::uint64_t instructions)
{
    SetAssocCache cache(size_bytes, assoc);
    ReferenceStream stream(spec, 0, /*seed=*/1);
    std::uint64_t retired = 0, misses = 0;
    while (retired < instructions) {
        const MemRef ref = stream.next();
        retired += ref.gap + 1;
        if (!cache.lookup(ref.va).hit) {
            ++misses;
            cache.insert(ref.va, SetAssocCache::InsertScope::FullSet,
                         CoherenceState::Exclusive, PageSize::Base4KB);
        }
    }
    return 1000.0 * static_cast<double>(misses) /
           static_cast<double>(retired);
}

} // namespace

int
main()
{
    using namespace seesaw;
    using namespace seesaw::bench;

    printBanner("Fig 2a",
                "Average MPKI vs associativity (16 workloads)");

    const std::uint64_t instructions =
        experimentInstructions(400'000);
    const std::uint64_t sizes[] = {16 * 1024, 32 * 1024, 64 * 1024,
                                   128 * 1024, 256 * 1024};
    const unsigned assocs[] = {1, 4, 8, 16, 32};
    const char *assoc_labels[] = {"DM", "4-way", "8-way", "16-way",
                                  "32-way"};

    TableReporter table({"cache", "DM", "4-way", "8-way", "16-way",
                         "32-way"});
    std::vector<std::vector<double>> grid;
    for (auto size : sizes) {
        std::vector<double> row;
        for (auto assoc : assocs) {
            double sum = 0.0;
            for (const auto &w : paperWorkloads())
                sum += measureMpki(w, size, assoc, instructions);
            row.push_back(sum / paperWorkloads().size());
        }
        grid.push_back(row);
        table.addRow({std::to_string(size / 1024) + "KB",
                      TableReporter::fmt(row[0], 1),
                      TableReporter::fmt(row[1], 1),
                      TableReporter::fmt(row[2], 1),
                      TableReporter::fmt(row[3], 1),
                      TableReporter::fmt(row[4], 1)});
    }
    table.print();

    std::printf("\nShape check (paper): DM >> 4-way; beyond 4-way the "
                "curve is nearly flat.\n");
    for (std::size_t s = 0; s < grid.size(); ++s) {
        const double dm = grid[s][0], w4 = grid[s][1], w32 = grid[s][4];
        std::printf("  %3lluKB: DM/4-way = %.2fx, 4-way/32-way = %.2fx\n",
                    static_cast<unsigned long long>(sizes[s] / 1024),
                    dm / w4, w4 / (w32 > 0 ? w32 : 1e-9));
    }
    (void)assoc_labels;
    return 0;
}
