/**
 * @file
 * Fig 11: per-workload split of SEESAW's L1 energy savings into
 * CPU-side lookups vs coherence lookups (64KB L1, OoO, 1.33GHz,
 * MOESI directory).
 *
 * Expected shape: every workload has a non-zero coherence share
 * (system activity exercises coherence even when single-threaded;
 * astar/mcf >10%), and multi-threaded workloads (canneal, tunkrank)
 * derive roughly a third of their savings from coherence.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace seesaw;
    using namespace seesaw::bench;

    printBanner("Fig 11", "% of L1 energy savings attributable to "
                          "CPU-side vs coherence lookups (64KB, OoO, "
                          "1.33GHz)");

    TableReporter table({"workload", "threads", "CPU-side", "coherence"});
    for (const auto &w : paperWorkloads()) {
        SystemConfig cfg = makeConfig(kCacheOrgs[1], 1.33);
        const auto cmp = compareBaselineVsSeesaw(w, cfg);
        const double cpu_saved = cmp.baseline.l1CpuDynamicNj -
                                 cmp.seesaw.l1CpuDynamicNj;
        const double coh_saved =
            cmp.baseline.l1CoherenceDynamicNj -
            cmp.seesaw.l1CoherenceDynamicNj;
        const double total = cpu_saved + coh_saved;
        table.addRow({w.name, std::to_string(w.threads),
                      TableReporter::pct(100.0 * cpu_saved / total, 1),
                      TableReporter::pct(100.0 * coh_saved / total,
                                         1)});
    }
    table.print();

    std::printf("\nShape check (paper): coherence share >10%% even for "
                "single-threaded workloads (system activity), and "
                "~1/3 for canneal/tunkrank.\nSnoopy-fabric comparison: "
                "see ablation_snoopy_coherence.\n");
    return 0;
}
