/**
 * @file
 * Simulator-throughput suite backing the CI perf-regression gate.
 *
 * Two tiers of measurement, both repeated SEESAW_PERF_REPEATS times
 * (default 3) with the median reported:
 *
 *  - micro: ns/op of the per-access primitives the hot path is built
 *    from — PageTable::translate() fast and slow paths, TLB lookup,
 *    VIPT L1 probe and the full SEESAW L1 access.
 *  - macro: simulated L1 accesses per second (and instructions per
 *    second) of whole-system runs, one cell per L1 design x workload
 *    class (zipf-hot / pointer-chase / streaming) on the paper's OoO
 *    fig07 configuration.
 *  - one-pass: N-substrate MultiConfigEngine pass vs N per-config
 *    re-runs of the same design-space sweep, at 4 and 8 substrates.
 *    The reported speedup is a wall-time ratio — machine-independent,
 *    so the gate asserts a hard floor on it rather than comparing
 *    against the baseline.
 *
 * A fixed integer calibration loop is timed alongside and reported as
 * `calibration_mops`; the gate divides every throughput metric by it so
 * the checked-in baseline transfers across machines of different speed.
 *
 * Output: `BENCH_throughput.json` under results/ (SEESAW_RESULTS_DIR),
 * plus a human-readable table on stdout. scripts/perf_gate.py compares
 * the JSON against bench/perf/BENCH_throughput.baseline.json.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "cache/set_assoc_cache.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "core/seesaw_cache.hh"
#include "harness/json.hh"
#include "harness/sinks.hh"
#include "mem/os_memory_manager.hh"
#include "sim/experiment.hh"
#include "sim/multi_config_engine.hh"
#include "sim/report.hh"
#include "sim/sim_engine.hh"
#include "tlb/tlb.hh"

namespace {

using namespace seesaw;

volatile std::uint64_t g_sink; //!< keeps measured loops live

void
consume(std::uint64_t v)
{
    g_sink = v;
}

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

unsigned
envRepeats()
{
    if (const char *s = std::getenv("SEESAW_PERF_REPEATS")) {
        const long v = std::atol(s);
        if (v >= 1 && v <= 99)
            return static_cast<unsigned>(v);
    }
    return 3;
}

double
median(std::vector<double> v)
{
    SEESAW_ASSERT(!v.empty(), "median of empty series");
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

/**
 * Fixed integer workload (xorshift64*) whose throughput in M ops/sec
 * characterises the host core; every gated metric is normalized by it.
 */
double
calibrationMops()
{
    constexpr std::uint64_t kOps = 40'000'000;
    std::uint64_t x = 0x9e3779b97f4a7c15ULL;
    const double t0 = nowSeconds();
    for (std::uint64_t i = 0; i < kOps; ++i) {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        x *= 0x2545f4914f6cdd1dULL;
    }
    const double dt = nowSeconds() - t0;
    consume(x); // defeat dead-code elimination of the loop
    return kOps / dt / 1e6;
}

/** One micro-bench cell: median ns per operation over the repeats. */
struct MicroResult
{
    std::string name;
    double nsPerOp = 0.0;
};

template <typename Body>
MicroResult
runMicro(const std::string &name, std::uint64_t iterations,
         unsigned repeats, Body &&body)
{
    std::vector<double> ns;
    for (unsigned r = 0; r < repeats; ++r) {
        const double t0 = nowSeconds();
        body(iterations);
        ns.push_back((nowSeconds() - t0) * 1e9 / iterations);
    }
    return MicroResult{name, median(std::move(ns))};
}

/** A live OS image with a mix of 4KB and 2MB mappings to translate. */
struct TranslateFixture
{
    OsMemoryManager os;
    Asid asid;
    // 2048 4KB VPNs: fits the 4096-slot translation cache, so the
    // fast-path micro measures hits rather than conflict evictions.
    static constexpr std::uint64_t kBytes = 8ULL << 20;

    TranslateFixture()
        : os([] {
              OsParams p;
              p.memBytes = 256ULL << 20;
              return p;
          }()),
          asid(os.createProcess())
    {
        // Half the range THP-eligible: the fixture exercises both the
        // superpage and base-page probe orders.
        os.mapAnonymous(asid, 0x10000000, kBytes, 0.5);
    }
};

std::vector<MicroResult>
runMicroSuite(unsigned repeats)
{
    std::vector<MicroResult> out;

    {
        TranslateFixture fx;
        const PageTable &pt = fx.os.pageTable();
        out.push_back(runMicro(
            "pagetable_translate_fast", 4'000'000, repeats,
            [&](std::uint64_t iters) {
                Rng rng(7);
                std::uint64_t live = 0;
                for (std::uint64_t i = 0; i < iters; ++i) {
                    const Addr va = 0x10000000 +
                                    (rng.next() % fx.kBytes & ~Addr{7});
                    auto t = pt.translate(fx.asid, va);
                    live += t ? t->paBase : 0;
                }
                consume(live);
            }));
        out.push_back(runMicro(
            "pagetable_translate_slow", 2'000'000, repeats,
            [&](std::uint64_t iters) {
                Rng rng(7);
                std::uint64_t live = 0;
                for (std::uint64_t i = 0; i < iters; ++i) {
                    const Addr va = 0x10000000 +
                                    (rng.next() % fx.kBytes & ~Addr{7});
                    auto t = pt.translateSlow(fx.asid, va);
                    live += t ? t->paBase : 0;
                }
                consume(live);
            }));
    }

    {
        Tlb tlb("perf", 64, 4, PageSize::Base4KB);
        for (Addr p = 0; p < 64; ++p)
            tlb.insert(1, p << 12, p << 12);
        out.push_back(runMicro(
            "tlb_lookup", 8'000'000, repeats,
            [&](std::uint64_t iters) {
                Addr va = 0;
                std::uint64_t live = 0;
                for (std::uint64_t i = 0; i < iters; ++i) {
                    va = (va + 4096) & 0x3ffff;
                    live += tlb.lookup(1, va) ? 1 : 0;
                }
                consume(live);
            }));
    }

    {
        SetAssocCache cache(32 * 1024, 8, 64, 2);
        Rng rng(1);
        for (int i = 0; i < 4096; ++i) {
            cache.insert(rng.next() & 0xffffff,
                         SetAssocCache::InsertScope::Partition,
                         CoherenceState::Exclusive, PageSize::Base4KB);
        }
        out.push_back(runMicro(
            "l1_probe", 8'000'000, repeats,
            [&](std::uint64_t iters) {
                Addr pa = 0;
                std::uint64_t live = 0;
                for (std::uint64_t i = 0; i < iters; ++i) {
                    pa = (pa + 8191) & 0xffffff;
                    live += cache.lookup(pa).hit ? 1 : 0;
                }
                consume(live);
            }));
    }

    {
        LatencyTable latency;
        SeesawConfig cfg;
        SeesawCache cache(cfg, latency);
        const Addr va = (7ULL << 21) | 0x1440;
        const Addr pa = (0x99ULL << 21) | (va & 0x1fffff);
        cache.tft().markRegion(va);
        out.push_back(runMicro(
            "seesaw_access", 4'000'000, repeats,
            [&](std::uint64_t iters) {
                std::uint64_t live = 0;
                for (std::uint64_t i = 0; i < iters; ++i) {
                    L1Access req{va, pa, PageSize::Super2MB,
                                 AccessType::Read};
                    live += cache.access(req).hit ? 1 : 0;
                }
                consume(live);
            }));
    }

    return out;
}

/** One macro cell: whole-system simulated-accesses/sec, median run. */
struct MacroResult
{
    std::string name;
    std::string workload;
    std::string design;
    double accessesPerSec = 0.0;
    double instrPerSec = 0.0;
    std::uint64_t l1Accesses = 0;
    std::uint64_t instructions = 0;
    double wallSeconds = 0.0;
};

MacroResult
runMacro(const std::string &workload_name, L1Kind design,
         unsigned repeats)
{
    const WorkloadSpec &w = findWorkload(workload_name);
    SystemConfig cfg;
    cfg.l1Kind = design;
    cfg.coreKind = CoreKind::OutOfOrder;
    cfg.instructions = experimentInstructions(400'000);
    cfg.os.memBytes = experimentMemBytes(1ULL << 30);
    cfg.seed = 1;

    std::vector<double> wall;
    RunResult res;
    for (unsigned r = 0; r < repeats; ++r) {
        const double t0 = nowSeconds();
        res = simulate(w, cfg);
        wall.push_back(nowSeconds() - t0);
    }

    MacroResult m;
    m.workload = workload_name;
    m.design = design == L1Kind::ViptBaseline ? "vipt" : "seesaw";
    m.name = workload_name + "/" + m.design;
    m.wallSeconds = median(std::move(wall));
    m.l1Accesses = res.l1Accesses;
    m.instructions = res.instructions;
    m.accessesPerSec = res.l1Accesses / m.wallSeconds;
    m.instrPerSec = res.instructions / m.wallSeconds;
    return m;
}

/** One one-pass cell: N-substrate pass vs N serial re-runs. */
struct OnePassResult
{
    unsigned substrates = 0;
    double serialSeconds = 0.0;
    double onePassSeconds = 0.0;
    double speedup = 0.0;
};

/**
 * The design-space sweep the one-pass macro times: @p n L1 designs
 * sharing one front end (same core kind and TLB geometry, so the
 * whole sweep forms a single TLB group — the harness's common case).
 */
std::vector<SystemConfig>
onePassSweepConfigs(unsigned n)
{
    const L1Kind kinds[] = {L1Kind::ViptBaseline,
                            L1Kind::Seesaw,
                            L1Kind::SeesawWayPredicted,
                            L1Kind::ViptWayPredicted,
                            L1Kind::Pipt,
                            L1Kind::Sipt};
    std::vector<SystemConfig> configs;
    for (unsigned i = 0; i < n; ++i) {
        SystemConfig cfg;
        cfg.l1Kind = kinds[i % std::size(kinds)];
        cfg.coreKind = CoreKind::OutOfOrder;
        cfg.instructions = experimentInstructions(200'000);
        // The fig12 fragmentation point: a 4GB physical image under
        // 60% memhog pressure. Building that image (buddy allocator,
        // churn, page tables) plus the zipf reference stream is the
        // config-invariant work a one-pass sweep pays once instead of
        // once per configuration.
        cfg.os.memBytes = experimentMemBytes(4ULL << 30);
        cfg.memhogFraction = 0.6;
        cfg.seed = 1;
        if (i >= std::size(kinds)) {
            // Wrap-around variants stay distinct via partition width
            // (the default SEESAW uses 4 ways per partition).
            cfg.l1Kind = L1Kind::Seesaw;
            cfg.partitionWays = i == std::size(kinds) ? 2 : 8;
        }
        configs.push_back(cfg);
    }
    return configs;
}

OnePassResult
runOnePassMacro(unsigned substrates, unsigned repeats)
{
    const WorkloadSpec &w = findWorkload("redis");
    const std::vector<SystemConfig> configs =
        onePassSweepConfigs(substrates);

    std::vector<double> serial, onePass;
    for (unsigned r = 0; r < repeats; ++r) {
        double t0 = nowSeconds();
        std::uint64_t live = 0;
        for (const SystemConfig &cfg : configs)
            live += simulate(w, cfg).l1Accesses;
        serial.push_back(nowSeconds() - t0);

        t0 = nowSeconds();
        MultiConfigEngine engine(configs, w);
        for (const RunResult &res : engine.run())
            live += res.l1Accesses;
        onePass.push_back(nowSeconds() - t0);
        consume(live);
    }

    OnePassResult out;
    out.substrates = substrates;
    out.serialSeconds = median(std::move(serial));
    out.onePassSeconds = median(std::move(onePass));
    out.speedup = out.serialSeconds / out.onePassSeconds;
    return out;
}

void
writeJson(const std::string &path, double calibration_mops,
          unsigned repeats, const std::vector<MicroResult> &micro,
          const std::vector<MacroResult> &macro,
          const std::vector<OnePassResult> &one_pass)
{
    std::ofstream os(path);
    SEESAW_ASSERT(os.good(), "cannot open " + path);
    harness::JsonWriter w(os);
    w.beginObject();
    w.field("suite", "perf_throughput");
    w.field("git_describe", harness::gitDescribe());
    w.field("repeats", repeats);
    w.field("calibration_mops", calibration_mops);
    w.key("micro").beginArray();
    for (const auto &m : micro) {
        w.beginObject();
        w.field("name", m.name);
        w.field("ns_per_op", m.nsPerOp);
        // ops/sec normalized by the calibration score: the gated,
        // machine-transferable figure of merit.
        w.field("normalized_ops",
                1e9 / m.nsPerOp / (calibration_mops * 1e6));
        w.endObject();
    }
    w.endArray();
    w.key("macro").beginArray();
    for (const auto &m : macro) {
        w.beginObject();
        w.field("name", m.name);
        w.field("workload", m.workload);
        w.field("design", m.design);
        w.field("accesses_per_sec", m.accessesPerSec);
        w.field("instructions_per_sec", m.instrPerSec);
        w.field("normalized_accesses",
                m.accessesPerSec / (calibration_mops * 1e6));
        w.field("l1_accesses", m.l1Accesses);
        w.field("instructions", m.instructions);
        w.field("wall_seconds", m.wallSeconds);
        w.endObject();
    }
    w.endArray();
    w.key("one_pass").beginArray();
    for (const auto &p : one_pass) {
        w.beginObject();
        w.field("substrates", p.substrates);
        w.field("serial_seconds", p.serialSeconds);
        w.field("one_pass_seconds", p.onePassSeconds);
        // Wall-time ratio: machine-independent, gated as a floor.
        w.field("speedup", p.speedup);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << '\n';
}

} // namespace

int
main()
{
    const unsigned repeats = envRepeats();

    printBanner("BENCH_throughput",
                "Simulator throughput: hot-path primitives and "
                "whole-system accesses/sec");

    const double mops = calibrationMops();
    std::printf("calibration: %.1f M integer ops/sec, %u repeats "
                "(median reported)\n\n",
                mops, repeats);

    const auto micro = runMicroSuite(repeats);
    TableReporter microTable({"primitive", "ns/op", "normalized"});
    for (const auto &m : micro) {
        microTable.addRow({m.name, TableReporter::fmt(m.nsPerOp, 1),
                           TableReporter::fmt(
                               1e9 / m.nsPerOp / (mops * 1e6), 4)});
    }
    microTable.print();
    std::printf("\n");

    // One workload per reference-stream class: zipf-hot server
    // (redis), pointer-chase (gups), streaming/graph (g500).
    const char *const kWorkloads[] = {"redis", "gups", "g500"};
    std::vector<MacroResult> macro;
    for (const char *wl : kWorkloads)
        for (const L1Kind design :
             {L1Kind::ViptBaseline, L1Kind::Seesaw})
            macro.push_back(runMacro(wl, design, repeats));

    TableReporter macroTable(
        {"cell", "Maccess/s", "Minstr/s", "normalized"});
    for (const auto &m : macro) {
        macroTable.addRow(
            {m.name, TableReporter::fmt(m.accessesPerSec / 1e6, 2),
             TableReporter::fmt(m.instrPerSec / 1e6, 2),
             TableReporter::fmt(m.accessesPerSec / (mops * 1e6), 4)});
    }
    macroTable.print();
    std::printf("\n");

    // One-pass multi-config vs per-config re-runs of the same sweep.
    std::vector<OnePassResult> onePass;
    for (const unsigned substrates : {4u, 8u})
        onePass.push_back(runOnePassMacro(substrates, repeats));

    TableReporter onePassTable(
        {"substrates", "serial s", "one-pass s", "speedup"});
    for (const auto &p : onePass) {
        onePassTable.addRow(
            {std::to_string(p.substrates),
             TableReporter::fmt(p.serialSeconds, 2),
             TableReporter::fmt(p.onePassSeconds, 2),
             TableReporter::fmt(p.speedup, 2) + "x"});
    }
    onePassTable.print();

    const char *env = std::getenv("SEESAW_RESULTS_DIR");
    const std::string dir = env && *env ? env : "results";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const std::string path = dir + "/BENCH_throughput.json";
    writeJson(path, mops, repeats, micro, macro, onePass);
    std::printf("\nwrote %s\n", path.c_str());
    return 0;
}
