/**
 * @file
 * Ablation: replacement policy x prefetch engine across L1 designs.
 *
 * The paper evaluates SEESAW under LRU with no prefetching; this
 * sweep checks that its win is not an artefact of that substrate.
 * Each (policy, prefetcher) point runs baseline VIPT and SEESAW over
 * the cloud workloads on the campaign runner (one-pass capable) and
 * reports the SEESAW runtime improvement plus the prefetcher's
 * issued/useful/illegal-crossing behaviour under way-partitioning.
 *
 * Expected shape: the SEESAW improvement stays positive for every
 * substrate; Random/FIFO trail LRU slightly; next-line prefetching
 * raises hit rate and its illegal-crossing drops stay modest because
 * superpage translations legalise most 4KB-frontier candidates.
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace seesaw;
    using namespace seesaw::bench;

    const harness::RunnerOptions options = parseBenchArgs(argc, argv);

    printBanner("Ablation: replacement x prefetch",
                "SEESAW vs VIPT across victim policies and "
                "prefetchers (32KB, OoO, 1.33GHz)");

    const ReplacementKind policies[] = {
        ReplacementKind::Lru, ReplacementKind::Fifo,
        ReplacementKind::Random, ReplacementKind::Srrip};
    const PrefetchKind prefetchers[] = {
        PrefetchKind::None, PrefetchKind::NextLine,
        PrefetchKind::Stride};

    harness::CampaignSpec spec("ablation_replacement_prefetch");
    spec.workloads(cloudWorkloads());
    for (const ReplacementKind rk : policies) {
        for (const PrefetchKind pk : prefetchers) {
            SystemConfig cfg = makeConfig(kCacheOrgs[0], 1.33);
            cfg.replacement.kind = rk;
            cfg.prefetch.kind = pk;
            const std::string point =
                std::string(replacementLabel(rk)) + "/" +
                prefetchLabel(pk);
            for (L1Kind kind :
                 {L1Kind::ViptBaseline, L1Kind::Seesaw}) {
                spec.variant(point + "/" + designLabel(kind),
                             withDesign(cfg, kind));
            }
        }
    }
    const auto outcome = runBenchCampaign(spec, options);

    TableReporter table({"policy", "prefetch", "improvement",
                         "pf issued", "pf useful", "pf dropped"});
    double lru_none_improvement = 0.0;
    double worst_improvement = 1e9;
    for (const ReplacementKind rk : policies) {
        for (const PrefetchKind pk : prefetchers) {
            const std::string point =
                std::string(replacementLabel(rk)) + "/" +
                prefetchLabel(pk) + "/";
            double improvement_sum = 0.0;
            std::uint64_t issued = 0, useful = 0, dropped = 0;
            for (const auto &w : cloudWorkloads()) {
                const std::string base = w.name + "/" + point;
                const RunResult &vipt = harness::findResult(
                    outcome.results, base + "vipt");
                const RunResult &seesaw = harness::findResult(
                    outcome.results, base + "seesaw");
                improvement_sum +=
                    runtimeImprovementPercent(vipt, seesaw);
                issued += seesaw.prefetchIssued;
                useful += seesaw.prefetchUseful;
                dropped += seesaw.prefetchIllegalCrossing;
            }
            const double improvement =
                improvement_sum / cloudWorkloads().size();
            if (rk == ReplacementKind::Lru &&
                pk == PrefetchKind::None)
                lru_none_improvement = improvement;
            worst_improvement =
                std::min(worst_improvement, improvement);
            table.addRow({replacementLabel(rk), prefetchLabel(pk),
                          TableReporter::pct(improvement, 2),
                          std::to_string(issued),
                          std::to_string(useful),
                          std::to_string(dropped)});
        }
    }
    table.print();

    std::printf("\nShape check (paper substrate = lru/none: %.2f%%): "
                "the SEESAW win persists across every replacement "
                "policy and prefetcher (worst point here: %.2f%%).\n",
                lru_none_improvement, worst_improvement);
    return 0;
}
