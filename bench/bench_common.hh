/**
 * @file
 * Shared helpers for the figure/table reproduction binaries.
 *
 * Every bench runs with a modest default instruction budget so the
 * whole suite finishes quickly; set SEESAW_INSTRUCTIONS (and
 * optionally SEESAW_MEM_BYTES) to crank a full reproduction.
 */

#ifndef SEESAW_BENCH_BENCH_COMMON_HH
#define SEESAW_BENCH_BENCH_COMMON_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/runner.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"
#include "sim/sim_engine.hh"

namespace seesaw::bench {

/** The three evaluated cache organisations (Table III). */
struct CacheOrg
{
    std::uint64_t sizeBytes;
    unsigned assoc;
    const char *label;
};

inline const CacheOrg kCacheOrgs[] = {
    {32 * 1024, 8, "32KB"},
    {64 * 1024, 16, "64KB"},
    {128 * 1024, 32, "128KB"},
};

/** The three evaluated frequencies. */
inline const double kFrequencies[] = {1.33, 2.80, 4.00};

/** Default bench configuration for one (org, freq) point. */
inline SystemConfig
makeConfig(const CacheOrg &org, double freq_ghz,
           std::uint64_t default_instr = 300'000)
{
    SystemConfig cfg;
    cfg.l1SizeBytes = org.sizeBytes;
    cfg.l1Assoc = org.assoc;
    cfg.freqGhz = freq_ghz;
    cfg.instructions = experimentInstructions(default_instr);
    cfg.os.memBytes = experimentMemBytes(4ULL << 30);
    cfg.seed = 1;
    return cfg;
}

/** @p cfg with its L1 design switched to @p kind. */
inline SystemConfig
withDesign(SystemConfig cfg, L1Kind kind)
{
    cfg.l1Kind = kind;
    return cfg;
}

/** Cell-name suffix for the two designs every comparison sweeps. */
inline const char *
designLabel(L1Kind kind)
{
    return kind == L1Kind::ViptBaseline ? "vipt" : "seesaw";
}

/**
 * Run @p spec with the bench defaults — SEESAW_JOBS-many workers
 * (hardware_concurrency when unset) and progress on stderr — and
 * archive JSON/CSV sinks under results/ (SEESAW_RESULTS_DIR).
 */
inline harness::CampaignOutcome
runBenchCampaign(const harness::CampaignSpec &spec,
                 harness::RunnerOptions options = {})
{
    return harness::CampaignRunner(std::move(options)).runAndWrite(spec);
}

/** Parse an on|off flag value (fatal otherwise). */
inline bool
parseOnOff(const char *flag, const std::string &value)
{
    if (value == "on")
        return true;
    if (value == "off")
        return false;
    std::fprintf(stderr, "%s wants on|off, got %s\n", flag,
                 value.c_str());
    std::exit(1);
}

/**
 * Parse the argv the figure binaries share: --one-pass on|off selects
 * whether cells with a common front end run as single multi-config
 * passes (RunnerOptions::onePass; results are bit-identical either
 * way, the sweep just makes one trace pass per group).
 */
inline harness::RunnerOptions
parseBenchArgs(int argc, char **argv)
{
    harness::RunnerOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--one-pass" && i + 1 < argc) {
            options.onePass = parseOnOff("--one-pass", argv[++i]);
        } else {
            std::fprintf(stderr, "usage: %s [--one-pass on|off]\n",
                         argv[0]);
            std::exit(arg == "--help" || arg == "-h" ? 0 : 1);
        }
    }
    return options;
}

} // namespace seesaw::bench

#endif // SEESAW_BENCH_BENCH_COMMON_HH
