/**
 * @file
 * Shared helpers for the figure/table reproduction binaries.
 *
 * Every bench runs with a modest default instruction budget so the
 * whole suite finishes quickly; set SEESAW_INSTRUCTIONS (and
 * optionally SEESAW_MEM_BYTES) to crank a full reproduction.
 */

#ifndef SEESAW_BENCH_BENCH_COMMON_HH
#define SEESAW_BENCH_BENCH_COMMON_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/runner.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"
#include "sim/sim_engine.hh"

namespace seesaw::bench {

/** The three evaluated cache organisations (Table III). */
struct CacheOrg
{
    std::uint64_t sizeBytes;
    unsigned assoc;
    const char *label;
};

inline const CacheOrg kCacheOrgs[] = {
    {32 * 1024, 8, "32KB"},
    {64 * 1024, 16, "64KB"},
    {128 * 1024, 32, "128KB"},
};

/** The three evaluated frequencies. */
inline const double kFrequencies[] = {1.33, 2.80, 4.00};

/** Default bench configuration for one (org, freq) point. */
inline SystemConfig
makeConfig(const CacheOrg &org, double freq_ghz,
           std::uint64_t default_instr = 300'000)
{
    SystemConfig cfg;
    cfg.l1SizeBytes = org.sizeBytes;
    cfg.l1Assoc = org.assoc;
    cfg.freqGhz = freq_ghz;
    cfg.instructions = experimentInstructions(default_instr);
    cfg.os.memBytes = experimentMemBytes(4ULL << 30);
    cfg.seed = 1;
    return cfg;
}

/** @p cfg with its L1 design switched to @p kind. */
inline SystemConfig
withDesign(SystemConfig cfg, L1Kind kind)
{
    cfg.l1Kind = kind;
    return cfg;
}

/** Cell-name suffix for the two designs every comparison sweeps. */
inline const char *
designLabel(L1Kind kind)
{
    return kind == L1Kind::ViptBaseline ? "vipt" : "seesaw";
}

/**
 * Run @p spec with the bench defaults — SEESAW_JOBS-many workers
 * (hardware_concurrency when unset) and progress on stderr — and
 * archive JSON/CSV sinks under results/ (SEESAW_RESULTS_DIR).
 */
inline harness::CampaignOutcome
runBenchCampaign(const harness::CampaignSpec &spec,
                 harness::RunnerOptions options = {})
{
    return harness::CampaignRunner(std::move(options)).runAndWrite(spec);
}

/** Parse an on|off flag value (fatal otherwise). */
inline bool
parseOnOff(const char *flag, const std::string &value)
{
    if (value == "on")
        return true;
    if (value == "off")
        return false;
    std::fprintf(stderr, "%s wants on|off, got %s\n", flag,
                 value.c_str());
    std::exit(1);
}

/** Parse a replacement-policy name (fatal otherwise). */
inline ReplacementKind
parseReplacement(const std::string &name)
{
    if (name == "lru")
        return ReplacementKind::Lru;
    if (name == "fifo")
        return ReplacementKind::Fifo;
    if (name == "random")
        return ReplacementKind::Random;
    if (name == "srrip")
        return ReplacementKind::Srrip;
    std::fprintf(stderr,
                 "unknown replacement %s (use lru|fifo|random|srrip)\n",
                 name.c_str());
    std::exit(1);
}

/** Parse a prefetch-engine name (fatal otherwise). */
inline PrefetchKind
parsePrefetch(const std::string &name)
{
    if (name == "none")
        return PrefetchKind::None;
    if (name == "nextline")
        return PrefetchKind::NextLine;
    if (name == "stride")
        return PrefetchKind::Stride;
    std::fprintf(stderr,
                 "unknown prefetcher %s (use none|nextline|stride)\n",
                 name.c_str());
    std::exit(1);
}

inline const char *
replacementLabel(ReplacementKind kind)
{
    switch (kind) {
      case ReplacementKind::Lru: return "lru";
      case ReplacementKind::Fifo: return "fifo";
      case ReplacementKind::Random: return "random";
      case ReplacementKind::Srrip: return "srrip";
    }
    return "?";
}

inline const char *
prefetchLabel(PrefetchKind kind)
{
    switch (kind) {
      case PrefetchKind::None: return "none";
      case PrefetchKind::NextLine: return "nextline";
      case PrefetchKind::Stride: return "stride";
    }
    return "?";
}

/** Replacement/prefetch overrides a figure binary applies to every
 *  config it builds (defaults reproduce the pinned LRU/no-prefetch
 *  paper numbers). */
struct PolicyArgs
{
    ReplacementParams replacement;
    PrefetchParams prefetch;

    SystemConfig
    apply(SystemConfig cfg) const
    {
        cfg.replacement = replacement;
        cfg.prefetch = prefetch;
        return cfg;
    }
};

/**
 * Parse the argv the figure binaries share: --one-pass on|off selects
 * whether cells with a common front end run as single multi-config
 * passes (RunnerOptions::onePass; results are bit-identical either
 * way, the sweep just makes one trace pass per group). Binaries that
 * pass @p policy additionally accept --replacement and --prefetch and
 * rerun their figure under that substrate.
 */
inline harness::RunnerOptions
parseBenchArgs(int argc, char **argv, PolicyArgs *policy = nullptr)
{
    harness::RunnerOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--one-pass" && i + 1 < argc) {
            options.onePass = parseOnOff("--one-pass", argv[++i]);
        } else if (policy && arg == "--replacement" && i + 1 < argc) {
            policy->replacement.kind = parseReplacement(argv[++i]);
        } else if (policy && arg == "--prefetch" && i + 1 < argc) {
            policy->prefetch.kind = parsePrefetch(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--one-pass on|off]%s\n", argv[0],
                         policy ? " [--replacement lru|fifo|random|"
                                  "srrip] [--prefetch none|nextline|"
                                  "stride]"
                                : "");
            std::exit(arg == "--help" || arg == "-h" ? 0 : 1);
        }
    }
    return options;
}

} // namespace seesaw::bench

#endif // SEESAW_BENCH_BENCH_COMMON_HH
