# Empty dependencies file for seesaw_core.
# This may be replaced when dependencies are built.
