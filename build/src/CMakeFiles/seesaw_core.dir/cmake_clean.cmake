file(REMOVE_RECURSE
  "CMakeFiles/seesaw_core.dir/core/seesaw_cache.cc.o"
  "CMakeFiles/seesaw_core.dir/core/seesaw_cache.cc.o.d"
  "CMakeFiles/seesaw_core.dir/core/tft.cc.o"
  "CMakeFiles/seesaw_core.dir/core/tft.cc.o.d"
  "libseesaw_core.a"
  "libseesaw_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seesaw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
