file(REMOVE_RECURSE
  "libseesaw_core.a"
)
