
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/experiment.cc" "src/CMakeFiles/seesaw_sim.dir/sim/experiment.cc.o" "gcc" "src/CMakeFiles/seesaw_sim.dir/sim/experiment.cc.o.d"
  "/root/repo/src/sim/multicore.cc" "src/CMakeFiles/seesaw_sim.dir/sim/multicore.cc.o" "gcc" "src/CMakeFiles/seesaw_sim.dir/sim/multicore.cc.o.d"
  "/root/repo/src/sim/report.cc" "src/CMakeFiles/seesaw_sim.dir/sim/report.cc.o" "gcc" "src/CMakeFiles/seesaw_sim.dir/sim/report.cc.o.d"
  "/root/repo/src/sim/system.cc" "src/CMakeFiles/seesaw_sim.dir/sim/system.cc.o" "gcc" "src/CMakeFiles/seesaw_sim.dir/sim/system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/seesaw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seesaw_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seesaw_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seesaw_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seesaw_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seesaw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seesaw_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seesaw_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seesaw_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
