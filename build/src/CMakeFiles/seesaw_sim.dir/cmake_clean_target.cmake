file(REMOVE_RECURSE
  "libseesaw_sim.a"
)
