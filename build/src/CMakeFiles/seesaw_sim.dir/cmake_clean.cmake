file(REMOVE_RECURSE
  "CMakeFiles/seesaw_sim.dir/sim/experiment.cc.o"
  "CMakeFiles/seesaw_sim.dir/sim/experiment.cc.o.d"
  "CMakeFiles/seesaw_sim.dir/sim/multicore.cc.o"
  "CMakeFiles/seesaw_sim.dir/sim/multicore.cc.o.d"
  "CMakeFiles/seesaw_sim.dir/sim/report.cc.o"
  "CMakeFiles/seesaw_sim.dir/sim/report.cc.o.d"
  "CMakeFiles/seesaw_sim.dir/sim/system.cc.o"
  "CMakeFiles/seesaw_sim.dir/sim/system.cc.o.d"
  "libseesaw_sim.a"
  "libseesaw_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seesaw_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
