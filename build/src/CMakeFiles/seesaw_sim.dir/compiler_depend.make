# Empty compiler generated dependencies file for seesaw_sim.
# This may be replaced when dependencies are built.
