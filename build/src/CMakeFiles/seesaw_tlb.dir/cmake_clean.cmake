file(REMOVE_RECURSE
  "CMakeFiles/seesaw_tlb.dir/tlb/page_walker.cc.o"
  "CMakeFiles/seesaw_tlb.dir/tlb/page_walker.cc.o.d"
  "CMakeFiles/seesaw_tlb.dir/tlb/tlb.cc.o"
  "CMakeFiles/seesaw_tlb.dir/tlb/tlb.cc.o.d"
  "CMakeFiles/seesaw_tlb.dir/tlb/tlb_hierarchy.cc.o"
  "CMakeFiles/seesaw_tlb.dir/tlb/tlb_hierarchy.cc.o.d"
  "CMakeFiles/seesaw_tlb.dir/tlb/unified_tlb.cc.o"
  "CMakeFiles/seesaw_tlb.dir/tlb/unified_tlb.cc.o.d"
  "libseesaw_tlb.a"
  "libseesaw_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seesaw_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
