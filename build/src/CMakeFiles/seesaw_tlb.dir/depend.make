# Empty dependencies file for seesaw_tlb.
# This may be replaced when dependencies are built.
