file(REMOVE_RECURSE
  "libseesaw_tlb.a"
)
