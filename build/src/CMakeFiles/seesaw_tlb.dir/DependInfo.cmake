
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tlb/page_walker.cc" "src/CMakeFiles/seesaw_tlb.dir/tlb/page_walker.cc.o" "gcc" "src/CMakeFiles/seesaw_tlb.dir/tlb/page_walker.cc.o.d"
  "/root/repo/src/tlb/tlb.cc" "src/CMakeFiles/seesaw_tlb.dir/tlb/tlb.cc.o" "gcc" "src/CMakeFiles/seesaw_tlb.dir/tlb/tlb.cc.o.d"
  "/root/repo/src/tlb/tlb_hierarchy.cc" "src/CMakeFiles/seesaw_tlb.dir/tlb/tlb_hierarchy.cc.o" "gcc" "src/CMakeFiles/seesaw_tlb.dir/tlb/tlb_hierarchy.cc.o.d"
  "/root/repo/src/tlb/unified_tlb.cc" "src/CMakeFiles/seesaw_tlb.dir/tlb/unified_tlb.cc.o" "gcc" "src/CMakeFiles/seesaw_tlb.dir/tlb/unified_tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/seesaw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seesaw_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
