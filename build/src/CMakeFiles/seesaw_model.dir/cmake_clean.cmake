file(REMOVE_RECURSE
  "CMakeFiles/seesaw_model.dir/model/energy_model.cc.o"
  "CMakeFiles/seesaw_model.dir/model/energy_model.cc.o.d"
  "CMakeFiles/seesaw_model.dir/model/latency_table.cc.o"
  "CMakeFiles/seesaw_model.dir/model/latency_table.cc.o.d"
  "CMakeFiles/seesaw_model.dir/model/sram_model.cc.o"
  "CMakeFiles/seesaw_model.dir/model/sram_model.cc.o.d"
  "libseesaw_model.a"
  "libseesaw_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seesaw_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
