# Empty dependencies file for seesaw_model.
# This may be replaced when dependencies are built.
