file(REMOVE_RECURSE
  "libseesaw_model.a"
)
