file(REMOVE_RECURSE
  "libseesaw_cpu.a"
)
