# Empty compiler generated dependencies file for seesaw_cpu.
# This may be replaced when dependencies are built.
