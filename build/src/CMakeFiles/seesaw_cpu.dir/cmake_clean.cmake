file(REMOVE_RECURSE
  "CMakeFiles/seesaw_cpu.dir/cpu/cpu_model.cc.o"
  "CMakeFiles/seesaw_cpu.dir/cpu/cpu_model.cc.o.d"
  "CMakeFiles/seesaw_cpu.dir/cpu/inorder_core.cc.o"
  "CMakeFiles/seesaw_cpu.dir/cpu/inorder_core.cc.o.d"
  "CMakeFiles/seesaw_cpu.dir/cpu/ooo_core.cc.o"
  "CMakeFiles/seesaw_cpu.dir/cpu/ooo_core.cc.o.d"
  "libseesaw_cpu.a"
  "libseesaw_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seesaw_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
