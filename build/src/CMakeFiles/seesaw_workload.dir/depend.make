# Empty dependencies file for seesaw_workload.
# This may be replaced when dependencies are built.
