file(REMOVE_RECURSE
  "CMakeFiles/seesaw_workload.dir/workload/code_stream.cc.o"
  "CMakeFiles/seesaw_workload.dir/workload/code_stream.cc.o.d"
  "CMakeFiles/seesaw_workload.dir/workload/reference_stream.cc.o"
  "CMakeFiles/seesaw_workload.dir/workload/reference_stream.cc.o.d"
  "CMakeFiles/seesaw_workload.dir/workload/trace.cc.o"
  "CMakeFiles/seesaw_workload.dir/workload/trace.cc.o.d"
  "CMakeFiles/seesaw_workload.dir/workload/workload_spec.cc.o"
  "CMakeFiles/seesaw_workload.dir/workload/workload_spec.cc.o.d"
  "libseesaw_workload.a"
  "libseesaw_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seesaw_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
