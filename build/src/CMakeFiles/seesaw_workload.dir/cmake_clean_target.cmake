file(REMOVE_RECURSE
  "libseesaw_workload.a"
)
