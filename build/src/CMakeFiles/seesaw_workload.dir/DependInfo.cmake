
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/code_stream.cc" "src/CMakeFiles/seesaw_workload.dir/workload/code_stream.cc.o" "gcc" "src/CMakeFiles/seesaw_workload.dir/workload/code_stream.cc.o.d"
  "/root/repo/src/workload/reference_stream.cc" "src/CMakeFiles/seesaw_workload.dir/workload/reference_stream.cc.o" "gcc" "src/CMakeFiles/seesaw_workload.dir/workload/reference_stream.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/CMakeFiles/seesaw_workload.dir/workload/trace.cc.o" "gcc" "src/CMakeFiles/seesaw_workload.dir/workload/trace.cc.o.d"
  "/root/repo/src/workload/workload_spec.cc" "src/CMakeFiles/seesaw_workload.dir/workload/workload_spec.cc.o" "gcc" "src/CMakeFiles/seesaw_workload.dir/workload/workload_spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/seesaw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seesaw_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
