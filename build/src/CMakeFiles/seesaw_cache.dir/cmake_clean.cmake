file(REMOVE_RECURSE
  "CMakeFiles/seesaw_cache.dir/cache/baseline_caches.cc.o"
  "CMakeFiles/seesaw_cache.dir/cache/baseline_caches.cc.o.d"
  "CMakeFiles/seesaw_cache.dir/cache/next_level.cc.o"
  "CMakeFiles/seesaw_cache.dir/cache/next_level.cc.o.d"
  "CMakeFiles/seesaw_cache.dir/cache/replacement.cc.o"
  "CMakeFiles/seesaw_cache.dir/cache/replacement.cc.o.d"
  "CMakeFiles/seesaw_cache.dir/cache/set_assoc_cache.cc.o"
  "CMakeFiles/seesaw_cache.dir/cache/set_assoc_cache.cc.o.d"
  "CMakeFiles/seesaw_cache.dir/cache/sipt_cache.cc.o"
  "CMakeFiles/seesaw_cache.dir/cache/sipt_cache.cc.o.d"
  "CMakeFiles/seesaw_cache.dir/cache/way_predictor.cc.o"
  "CMakeFiles/seesaw_cache.dir/cache/way_predictor.cc.o.d"
  "libseesaw_cache.a"
  "libseesaw_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seesaw_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
