# Empty compiler generated dependencies file for seesaw_cache.
# This may be replaced when dependencies are built.
