
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/baseline_caches.cc" "src/CMakeFiles/seesaw_cache.dir/cache/baseline_caches.cc.o" "gcc" "src/CMakeFiles/seesaw_cache.dir/cache/baseline_caches.cc.o.d"
  "/root/repo/src/cache/next_level.cc" "src/CMakeFiles/seesaw_cache.dir/cache/next_level.cc.o" "gcc" "src/CMakeFiles/seesaw_cache.dir/cache/next_level.cc.o.d"
  "/root/repo/src/cache/replacement.cc" "src/CMakeFiles/seesaw_cache.dir/cache/replacement.cc.o" "gcc" "src/CMakeFiles/seesaw_cache.dir/cache/replacement.cc.o.d"
  "/root/repo/src/cache/set_assoc_cache.cc" "src/CMakeFiles/seesaw_cache.dir/cache/set_assoc_cache.cc.o" "gcc" "src/CMakeFiles/seesaw_cache.dir/cache/set_assoc_cache.cc.o.d"
  "/root/repo/src/cache/sipt_cache.cc" "src/CMakeFiles/seesaw_cache.dir/cache/sipt_cache.cc.o" "gcc" "src/CMakeFiles/seesaw_cache.dir/cache/sipt_cache.cc.o.d"
  "/root/repo/src/cache/way_predictor.cc" "src/CMakeFiles/seesaw_cache.dir/cache/way_predictor.cc.o" "gcc" "src/CMakeFiles/seesaw_cache.dir/cache/way_predictor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/seesaw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seesaw_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
