file(REMOVE_RECURSE
  "libseesaw_cache.a"
)
