file(REMOVE_RECURSE
  "CMakeFiles/seesaw_coherence.dir/coherence/exact_directory.cc.o"
  "CMakeFiles/seesaw_coherence.dir/coherence/exact_directory.cc.o.d"
  "CMakeFiles/seesaw_coherence.dir/coherence/probe_engine.cc.o"
  "CMakeFiles/seesaw_coherence.dir/coherence/probe_engine.cc.o.d"
  "CMakeFiles/seesaw_coherence.dir/coherence/snoop_bus.cc.o"
  "CMakeFiles/seesaw_coherence.dir/coherence/snoop_bus.cc.o.d"
  "libseesaw_coherence.a"
  "libseesaw_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seesaw_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
