# Empty compiler generated dependencies file for seesaw_coherence.
# This may be replaced when dependencies are built.
