
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coherence/exact_directory.cc" "src/CMakeFiles/seesaw_coherence.dir/coherence/exact_directory.cc.o" "gcc" "src/CMakeFiles/seesaw_coherence.dir/coherence/exact_directory.cc.o.d"
  "/root/repo/src/coherence/probe_engine.cc" "src/CMakeFiles/seesaw_coherence.dir/coherence/probe_engine.cc.o" "gcc" "src/CMakeFiles/seesaw_coherence.dir/coherence/probe_engine.cc.o.d"
  "/root/repo/src/coherence/snoop_bus.cc" "src/CMakeFiles/seesaw_coherence.dir/coherence/snoop_bus.cc.o" "gcc" "src/CMakeFiles/seesaw_coherence.dir/coherence/snoop_bus.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/seesaw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seesaw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seesaw_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seesaw_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seesaw_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seesaw_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
