file(REMOVE_RECURSE
  "libseesaw_coherence.a"
)
