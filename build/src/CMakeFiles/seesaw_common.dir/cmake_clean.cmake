file(REMOVE_RECURSE
  "CMakeFiles/seesaw_common.dir/common/logging.cc.o"
  "CMakeFiles/seesaw_common.dir/common/logging.cc.o.d"
  "CMakeFiles/seesaw_common.dir/common/random.cc.o"
  "CMakeFiles/seesaw_common.dir/common/random.cc.o.d"
  "CMakeFiles/seesaw_common.dir/common/stats.cc.o"
  "CMakeFiles/seesaw_common.dir/common/stats.cc.o.d"
  "libseesaw_common.a"
  "libseesaw_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seesaw_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
