# Empty compiler generated dependencies file for seesaw_common.
# This may be replaced when dependencies are built.
