file(REMOVE_RECURSE
  "libseesaw_common.a"
)
