file(REMOVE_RECURSE
  "CMakeFiles/seesaw_mem.dir/mem/buddy_allocator.cc.o"
  "CMakeFiles/seesaw_mem.dir/mem/buddy_allocator.cc.o.d"
  "CMakeFiles/seesaw_mem.dir/mem/memhog.cc.o"
  "CMakeFiles/seesaw_mem.dir/mem/memhog.cc.o.d"
  "CMakeFiles/seesaw_mem.dir/mem/os_memory_manager.cc.o"
  "CMakeFiles/seesaw_mem.dir/mem/os_memory_manager.cc.o.d"
  "CMakeFiles/seesaw_mem.dir/mem/page_table.cc.o"
  "CMakeFiles/seesaw_mem.dir/mem/page_table.cc.o.d"
  "libseesaw_mem.a"
  "libseesaw_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seesaw_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
