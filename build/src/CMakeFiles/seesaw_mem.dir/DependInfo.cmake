
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/buddy_allocator.cc" "src/CMakeFiles/seesaw_mem.dir/mem/buddy_allocator.cc.o" "gcc" "src/CMakeFiles/seesaw_mem.dir/mem/buddy_allocator.cc.o.d"
  "/root/repo/src/mem/memhog.cc" "src/CMakeFiles/seesaw_mem.dir/mem/memhog.cc.o" "gcc" "src/CMakeFiles/seesaw_mem.dir/mem/memhog.cc.o.d"
  "/root/repo/src/mem/os_memory_manager.cc" "src/CMakeFiles/seesaw_mem.dir/mem/os_memory_manager.cc.o" "gcc" "src/CMakeFiles/seesaw_mem.dir/mem/os_memory_manager.cc.o.d"
  "/root/repo/src/mem/page_table.cc" "src/CMakeFiles/seesaw_mem.dir/mem/page_table.cc.o" "gcc" "src/CMakeFiles/seesaw_mem.dir/mem/page_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/seesaw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
