# Empty dependencies file for seesaw_mem.
# This may be replaced when dependencies are built.
