file(REMOVE_RECURSE
  "libseesaw_mem.a"
)
