file(REMOVE_RECURSE
  "../bench/ablation_tft_geometry"
  "../bench/ablation_tft_geometry.pdb"
  "CMakeFiles/ablation_tft_geometry.dir/ablation_tft_geometry.cc.o"
  "CMakeFiles/ablation_tft_geometry.dir/ablation_tft_geometry.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tft_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
