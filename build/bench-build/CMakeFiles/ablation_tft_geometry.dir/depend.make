# Empty dependencies file for ablation_tft_geometry.
# This may be replaced when dependencies are built.
