file(REMOVE_RECURSE
  "../bench/fig07_runtime_ooo"
  "../bench/fig07_runtime_ooo.pdb"
  "CMakeFiles/fig07_runtime_ooo.dir/fig07_runtime_ooo.cc.o"
  "CMakeFiles/fig07_runtime_ooo.dir/fig07_runtime_ooo.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_runtime_ooo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
