# Empty dependencies file for fig07_runtime_ooo.
# This may be replaced when dependencies are built.
