
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig13_tft_analysis.cc" "bench-build/CMakeFiles/fig13_tft_analysis.dir/fig13_tft_analysis.cc.o" "gcc" "bench-build/CMakeFiles/fig13_tft_analysis.dir/fig13_tft_analysis.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/seesaw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seesaw_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seesaw_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seesaw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seesaw_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seesaw_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seesaw_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seesaw_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seesaw_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seesaw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
