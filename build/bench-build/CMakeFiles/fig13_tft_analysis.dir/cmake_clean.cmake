file(REMOVE_RECURSE
  "../bench/fig13_tft_analysis"
  "../bench/fig13_tft_analysis.pdb"
  "CMakeFiles/fig13_tft_analysis.dir/fig13_tft_analysis.cc.o"
  "CMakeFiles/fig13_tft_analysis.dir/fig13_tft_analysis.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_tft_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
