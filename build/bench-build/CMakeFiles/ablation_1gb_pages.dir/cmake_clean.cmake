file(REMOVE_RECURSE
  "../bench/ablation_1gb_pages"
  "../bench/ablation_1gb_pages.pdb"
  "CMakeFiles/ablation_1gb_pages.dir/ablation_1gb_pages.cc.o"
  "CMakeFiles/ablation_1gb_pages.dir/ablation_1gb_pages.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_1gb_pages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
