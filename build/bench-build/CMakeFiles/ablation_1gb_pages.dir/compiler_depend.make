# Empty compiler generated dependencies file for ablation_1gb_pages.
# This may be replaced when dependencies are built.
