# Empty compiler generated dependencies file for table1_lookup_anatomy.
# This may be replaced when dependencies are built.
