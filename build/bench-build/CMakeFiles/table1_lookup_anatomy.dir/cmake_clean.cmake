file(REMOVE_RECURSE
  "../bench/table1_lookup_anatomy"
  "../bench/table1_lookup_anatomy.pdb"
  "CMakeFiles/table1_lookup_anatomy.dir/table1_lookup_anatomy.cc.o"
  "CMakeFiles/table1_lookup_anatomy.dir/table1_lookup_anatomy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_lookup_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
