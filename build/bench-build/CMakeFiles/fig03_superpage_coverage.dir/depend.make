# Empty dependencies file for fig03_superpage_coverage.
# This may be replaced when dependencies are built.
