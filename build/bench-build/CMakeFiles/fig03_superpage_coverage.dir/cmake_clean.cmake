file(REMOVE_RECURSE
  "../bench/fig03_superpage_coverage"
  "../bench/fig03_superpage_coverage.pdb"
  "CMakeFiles/fig03_superpage_coverage.dir/fig03_superpage_coverage.cc.o"
  "CMakeFiles/fig03_superpage_coverage.dir/fig03_superpage_coverage.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_superpage_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
