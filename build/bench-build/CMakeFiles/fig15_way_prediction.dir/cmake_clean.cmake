file(REMOVE_RECURSE
  "../bench/fig15_way_prediction"
  "../bench/fig15_way_prediction.pdb"
  "CMakeFiles/fig15_way_prediction.dir/fig15_way_prediction.cc.o"
  "CMakeFiles/fig15_way_prediction.dir/fig15_way_prediction.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_way_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
