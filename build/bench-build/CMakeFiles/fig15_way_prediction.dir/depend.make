# Empty dependencies file for fig15_way_prediction.
# This may be replaced when dependencies are built.
