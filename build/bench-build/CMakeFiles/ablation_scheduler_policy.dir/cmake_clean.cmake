file(REMOVE_RECURSE
  "../bench/ablation_scheduler_policy"
  "../bench/ablation_scheduler_policy.pdb"
  "CMakeFiles/ablation_scheduler_policy.dir/ablation_scheduler_policy.cc.o"
  "CMakeFiles/ablation_scheduler_policy.dir/ablation_scheduler_policy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_scheduler_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
