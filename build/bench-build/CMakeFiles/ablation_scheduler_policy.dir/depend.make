# Empty dependencies file for ablation_scheduler_policy.
# This may be replaced when dependencies are built.
