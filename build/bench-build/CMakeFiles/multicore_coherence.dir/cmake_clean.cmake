file(REMOVE_RECURSE
  "../bench/multicore_coherence"
  "../bench/multicore_coherence.pdb"
  "CMakeFiles/multicore_coherence.dir/multicore_coherence.cc.o"
  "CMakeFiles/multicore_coherence.dir/multicore_coherence.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicore_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
