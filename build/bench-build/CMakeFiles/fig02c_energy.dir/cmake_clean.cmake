file(REMOVE_RECURSE
  "../bench/fig02c_energy"
  "../bench/fig02c_energy.pdb"
  "CMakeFiles/fig02c_energy.dir/fig02c_energy.cc.o"
  "CMakeFiles/fig02c_energy.dir/fig02c_energy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02c_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
