# Empty dependencies file for fig02c_energy.
# This may be replaced when dependencies are built.
