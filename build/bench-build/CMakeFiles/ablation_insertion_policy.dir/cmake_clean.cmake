file(REMOVE_RECURSE
  "../bench/ablation_insertion_policy"
  "../bench/ablation_insertion_policy.pdb"
  "CMakeFiles/ablation_insertion_policy.dir/ablation_insertion_policy.cc.o"
  "CMakeFiles/ablation_insertion_policy.dir/ablation_insertion_policy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_insertion_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
