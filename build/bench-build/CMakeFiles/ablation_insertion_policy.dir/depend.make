# Empty dependencies file for ablation_insertion_policy.
# This may be replaced when dependencies are built.
