# Empty dependencies file for ablation_unified_tlb.
# This may be replaced when dependencies are built.
