file(REMOVE_RECURSE
  "../bench/ablation_unified_tlb"
  "../bench/ablation_unified_tlb.pdb"
  "CMakeFiles/ablation_unified_tlb.dir/ablation_unified_tlb.cc.o"
  "CMakeFiles/ablation_unified_tlb.dir/ablation_unified_tlb.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_unified_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
