file(REMOVE_RECURSE
  "../bench/ablation_icache"
  "../bench/ablation_icache.pdb"
  "CMakeFiles/ablation_icache.dir/ablation_icache.cc.o"
  "CMakeFiles/ablation_icache.dir/ablation_icache.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_icache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
