# Empty compiler generated dependencies file for fig12_fragmentation.
# This may be replaced when dependencies are built.
