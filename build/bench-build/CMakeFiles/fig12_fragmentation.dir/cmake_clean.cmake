file(REMOVE_RECURSE
  "../bench/fig12_fragmentation"
  "../bench/fig12_fragmentation.pdb"
  "CMakeFiles/fig12_fragmentation.dir/fig12_fragmentation.cc.o"
  "CMakeFiles/fig12_fragmentation.dir/fig12_fragmentation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_fragmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
