# Empty dependencies file for fig02a_mpki.
# This may be replaced when dependencies are built.
