file(REMOVE_RECURSE
  "../bench/fig02a_mpki"
  "../bench/fig02a_mpki.pdb"
  "CMakeFiles/fig02a_mpki.dir/fig02a_mpki.cc.o"
  "CMakeFiles/fig02a_mpki.dir/fig02a_mpki.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02a_mpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
