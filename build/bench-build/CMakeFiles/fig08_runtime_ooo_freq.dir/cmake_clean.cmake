file(REMOVE_RECURSE
  "../bench/fig08_runtime_ooo_freq"
  "../bench/fig08_runtime_ooo_freq.pdb"
  "CMakeFiles/fig08_runtime_ooo_freq.dir/fig08_runtime_ooo_freq.cc.o"
  "CMakeFiles/fig08_runtime_ooo_freq.dir/fig08_runtime_ooo_freq.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_runtime_ooo_freq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
