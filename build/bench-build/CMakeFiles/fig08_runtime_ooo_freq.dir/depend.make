# Empty dependencies file for fig08_runtime_ooo_freq.
# This may be replaced when dependencies are built.
