# Empty dependencies file for fig14_vs_alternatives.
# This may be replaced when dependencies are built.
