file(REMOVE_RECURSE
  "../bench/fig14_vs_alternatives"
  "../bench/fig14_vs_alternatives.pdb"
  "CMakeFiles/fig14_vs_alternatives.dir/fig14_vs_alternatives.cc.o"
  "CMakeFiles/fig14_vs_alternatives.dir/fig14_vs_alternatives.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_vs_alternatives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
