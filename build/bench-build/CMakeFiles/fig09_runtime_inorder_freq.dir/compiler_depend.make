# Empty compiler generated dependencies file for fig09_runtime_inorder_freq.
# This may be replaced when dependencies are built.
