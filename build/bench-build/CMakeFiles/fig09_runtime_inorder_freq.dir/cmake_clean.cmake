file(REMOVE_RECURSE
  "../bench/fig09_runtime_inorder_freq"
  "../bench/fig09_runtime_inorder_freq.pdb"
  "CMakeFiles/fig09_runtime_inorder_freq.dir/fig09_runtime_inorder_freq.cc.o"
  "CMakeFiles/fig09_runtime_inorder_freq.dir/fig09_runtime_inorder_freq.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_runtime_inorder_freq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
