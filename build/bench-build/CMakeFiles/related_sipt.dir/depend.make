# Empty dependencies file for related_sipt.
# This may be replaced when dependencies are built.
