file(REMOVE_RECURSE
  "../bench/related_sipt"
  "../bench/related_sipt.pdb"
  "CMakeFiles/related_sipt.dir/related_sipt.cc.o"
  "CMakeFiles/related_sipt.dir/related_sipt.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/related_sipt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
