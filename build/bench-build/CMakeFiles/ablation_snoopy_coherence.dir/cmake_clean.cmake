file(REMOVE_RECURSE
  "../bench/ablation_snoopy_coherence"
  "../bench/ablation_snoopy_coherence.pdb"
  "CMakeFiles/ablation_snoopy_coherence.dir/ablation_snoopy_coherence.cc.o"
  "CMakeFiles/ablation_snoopy_coherence.dir/ablation_snoopy_coherence.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_snoopy_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
