# Empty dependencies file for ablation_snoopy_coherence.
# This may be replaced when dependencies are built.
