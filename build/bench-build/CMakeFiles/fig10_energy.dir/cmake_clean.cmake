file(REMOVE_RECURSE
  "../bench/fig10_energy"
  "../bench/fig10_energy.pdb"
  "CMakeFiles/fig10_energy.dir/fig10_energy.cc.o"
  "CMakeFiles/fig10_energy.dir/fig10_energy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
