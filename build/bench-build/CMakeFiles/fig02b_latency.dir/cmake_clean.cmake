file(REMOVE_RECURSE
  "../bench/fig02b_latency"
  "../bench/fig02b_latency.pdb"
  "CMakeFiles/fig02b_latency.dir/fig02b_latency.cc.o"
  "CMakeFiles/fig02b_latency.dir/fig02b_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02b_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
