# Empty compiler generated dependencies file for fig02b_latency.
# This may be replaced when dependencies are built.
