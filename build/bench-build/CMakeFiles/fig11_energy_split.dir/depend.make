# Empty dependencies file for fig11_energy_split.
# This may be replaced when dependencies are built.
