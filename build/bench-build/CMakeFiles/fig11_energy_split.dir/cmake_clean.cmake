file(REMOVE_RECURSE
  "../bench/fig11_energy_split"
  "../bench/fig11_energy_split.pdb"
  "CMakeFiles/fig11_energy_split.dir/fig11_energy_split.cc.o"
  "CMakeFiles/fig11_energy_split.dir/fig11_energy_split.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_energy_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
