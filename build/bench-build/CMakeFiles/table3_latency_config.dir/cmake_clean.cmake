file(REMOVE_RECURSE
  "../bench/table3_latency_config"
  "../bench/table3_latency_config.pdb"
  "CMakeFiles/table3_latency_config.dir/table3_latency_config.cc.o"
  "CMakeFiles/table3_latency_config.dir/table3_latency_config.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_latency_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
