# Empty dependencies file for table3_latency_config.
# This may be replaced when dependencies are built.
