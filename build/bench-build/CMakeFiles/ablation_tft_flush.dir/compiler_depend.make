# Empty compiler generated dependencies file for ablation_tft_flush.
# This may be replaced when dependencies are built.
