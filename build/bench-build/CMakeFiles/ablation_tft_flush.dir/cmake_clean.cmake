file(REMOVE_RECURSE
  "../bench/ablation_tft_flush"
  "../bench/ablation_tft_flush.pdb"
  "CMakeFiles/ablation_tft_flush.dir/ablation_tft_flush.cc.o"
  "CMakeFiles/ablation_tft_flush.dir/ablation_tft_flush.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tft_flush.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
