
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cache/test_baseline_caches.cc" "tests/CMakeFiles/seesaw_tests.dir/cache/test_baseline_caches.cc.o" "gcc" "tests/CMakeFiles/seesaw_tests.dir/cache/test_baseline_caches.cc.o.d"
  "/root/repo/tests/cache/test_next_level.cc" "tests/CMakeFiles/seesaw_tests.dir/cache/test_next_level.cc.o" "gcc" "tests/CMakeFiles/seesaw_tests.dir/cache/test_next_level.cc.o.d"
  "/root/repo/tests/cache/test_replacement.cc" "tests/CMakeFiles/seesaw_tests.dir/cache/test_replacement.cc.o" "gcc" "tests/CMakeFiles/seesaw_tests.dir/cache/test_replacement.cc.o.d"
  "/root/repo/tests/cache/test_set_assoc_cache.cc" "tests/CMakeFiles/seesaw_tests.dir/cache/test_set_assoc_cache.cc.o" "gcc" "tests/CMakeFiles/seesaw_tests.dir/cache/test_set_assoc_cache.cc.o.d"
  "/root/repo/tests/cache/test_sipt_cache.cc" "tests/CMakeFiles/seesaw_tests.dir/cache/test_sipt_cache.cc.o" "gcc" "tests/CMakeFiles/seesaw_tests.dir/cache/test_sipt_cache.cc.o.d"
  "/root/repo/tests/cache/test_way_predictor.cc" "tests/CMakeFiles/seesaw_tests.dir/cache/test_way_predictor.cc.o" "gcc" "tests/CMakeFiles/seesaw_tests.dir/cache/test_way_predictor.cc.o.d"
  "/root/repo/tests/coherence/test_exact_directory.cc" "tests/CMakeFiles/seesaw_tests.dir/coherence/test_exact_directory.cc.o" "gcc" "tests/CMakeFiles/seesaw_tests.dir/coherence/test_exact_directory.cc.o.d"
  "/root/repo/tests/coherence/test_moesi.cc" "tests/CMakeFiles/seesaw_tests.dir/coherence/test_moesi.cc.o" "gcc" "tests/CMakeFiles/seesaw_tests.dir/coherence/test_moesi.cc.o.d"
  "/root/repo/tests/coherence/test_probe_engine.cc" "tests/CMakeFiles/seesaw_tests.dir/coherence/test_probe_engine.cc.o" "gcc" "tests/CMakeFiles/seesaw_tests.dir/coherence/test_probe_engine.cc.o.d"
  "/root/repo/tests/common/test_assertions.cc" "tests/CMakeFiles/seesaw_tests.dir/common/test_assertions.cc.o" "gcc" "tests/CMakeFiles/seesaw_tests.dir/common/test_assertions.cc.o.d"
  "/root/repo/tests/common/test_bitops.cc" "tests/CMakeFiles/seesaw_tests.dir/common/test_bitops.cc.o" "gcc" "tests/CMakeFiles/seesaw_tests.dir/common/test_bitops.cc.o.d"
  "/root/repo/tests/common/test_random.cc" "tests/CMakeFiles/seesaw_tests.dir/common/test_random.cc.o" "gcc" "tests/CMakeFiles/seesaw_tests.dir/common/test_random.cc.o.d"
  "/root/repo/tests/common/test_stats.cc" "tests/CMakeFiles/seesaw_tests.dir/common/test_stats.cc.o" "gcc" "tests/CMakeFiles/seesaw_tests.dir/common/test_stats.cc.o.d"
  "/root/repo/tests/core/test_seesaw_cache.cc" "tests/CMakeFiles/seesaw_tests.dir/core/test_seesaw_cache.cc.o" "gcc" "tests/CMakeFiles/seesaw_tests.dir/core/test_seesaw_cache.cc.o.d"
  "/root/repo/tests/core/test_tft.cc" "tests/CMakeFiles/seesaw_tests.dir/core/test_tft.cc.o" "gcc" "tests/CMakeFiles/seesaw_tests.dir/core/test_tft.cc.o.d"
  "/root/repo/tests/cpu/test_cpu_models.cc" "tests/CMakeFiles/seesaw_tests.dir/cpu/test_cpu_models.cc.o" "gcc" "tests/CMakeFiles/seesaw_tests.dir/cpu/test_cpu_models.cc.o.d"
  "/root/repo/tests/integration/test_one_gb_pages.cc" "tests/CMakeFiles/seesaw_tests.dir/integration/test_one_gb_pages.cc.o" "gcc" "tests/CMakeFiles/seesaw_tests.dir/integration/test_one_gb_pages.cc.o.d"
  "/root/repo/tests/integration/test_paper_properties.cc" "tests/CMakeFiles/seesaw_tests.dir/integration/test_paper_properties.cc.o" "gcc" "tests/CMakeFiles/seesaw_tests.dir/integration/test_paper_properties.cc.o.d"
  "/root/repo/tests/integration/test_reference_models.cc" "tests/CMakeFiles/seesaw_tests.dir/integration/test_reference_models.cc.o" "gcc" "tests/CMakeFiles/seesaw_tests.dir/integration/test_reference_models.cc.o.d"
  "/root/repo/tests/mem/test_buddy_allocator.cc" "tests/CMakeFiles/seesaw_tests.dir/mem/test_buddy_allocator.cc.o" "gcc" "tests/CMakeFiles/seesaw_tests.dir/mem/test_buddy_allocator.cc.o.d"
  "/root/repo/tests/mem/test_memhog.cc" "tests/CMakeFiles/seesaw_tests.dir/mem/test_memhog.cc.o" "gcc" "tests/CMakeFiles/seesaw_tests.dir/mem/test_memhog.cc.o.d"
  "/root/repo/tests/mem/test_os_memory_manager.cc" "tests/CMakeFiles/seesaw_tests.dir/mem/test_os_memory_manager.cc.o" "gcc" "tests/CMakeFiles/seesaw_tests.dir/mem/test_os_memory_manager.cc.o.d"
  "/root/repo/tests/mem/test_page_table.cc" "tests/CMakeFiles/seesaw_tests.dir/mem/test_page_table.cc.o" "gcc" "tests/CMakeFiles/seesaw_tests.dir/mem/test_page_table.cc.o.d"
  "/root/repo/tests/model/test_energy_model.cc" "tests/CMakeFiles/seesaw_tests.dir/model/test_energy_model.cc.o" "gcc" "tests/CMakeFiles/seesaw_tests.dir/model/test_energy_model.cc.o.d"
  "/root/repo/tests/model/test_latency_table.cc" "tests/CMakeFiles/seesaw_tests.dir/model/test_latency_table.cc.o" "gcc" "tests/CMakeFiles/seesaw_tests.dir/model/test_latency_table.cc.o.d"
  "/root/repo/tests/model/test_sram_model.cc" "tests/CMakeFiles/seesaw_tests.dir/model/test_sram_model.cc.o" "gcc" "tests/CMakeFiles/seesaw_tests.dir/model/test_sram_model.cc.o.d"
  "/root/repo/tests/sim/test_extensions.cc" "tests/CMakeFiles/seesaw_tests.dir/sim/test_extensions.cc.o" "gcc" "tests/CMakeFiles/seesaw_tests.dir/sim/test_extensions.cc.o.d"
  "/root/repo/tests/sim/test_multicore.cc" "tests/CMakeFiles/seesaw_tests.dir/sim/test_multicore.cc.o" "gcc" "tests/CMakeFiles/seesaw_tests.dir/sim/test_multicore.cc.o.d"
  "/root/repo/tests/sim/test_report.cc" "tests/CMakeFiles/seesaw_tests.dir/sim/test_report.cc.o" "gcc" "tests/CMakeFiles/seesaw_tests.dir/sim/test_report.cc.o.d"
  "/root/repo/tests/sim/test_system.cc" "tests/CMakeFiles/seesaw_tests.dir/sim/test_system.cc.o" "gcc" "tests/CMakeFiles/seesaw_tests.dir/sim/test_system.cc.o.d"
  "/root/repo/tests/tlb/test_page_walker.cc" "tests/CMakeFiles/seesaw_tests.dir/tlb/test_page_walker.cc.o" "gcc" "tests/CMakeFiles/seesaw_tests.dir/tlb/test_page_walker.cc.o.d"
  "/root/repo/tests/tlb/test_tlb.cc" "tests/CMakeFiles/seesaw_tests.dir/tlb/test_tlb.cc.o" "gcc" "tests/CMakeFiles/seesaw_tests.dir/tlb/test_tlb.cc.o.d"
  "/root/repo/tests/tlb/test_tlb_hierarchy.cc" "tests/CMakeFiles/seesaw_tests.dir/tlb/test_tlb_hierarchy.cc.o" "gcc" "tests/CMakeFiles/seesaw_tests.dir/tlb/test_tlb_hierarchy.cc.o.d"
  "/root/repo/tests/tlb/test_unified_tlb.cc" "tests/CMakeFiles/seesaw_tests.dir/tlb/test_unified_tlb.cc.o" "gcc" "tests/CMakeFiles/seesaw_tests.dir/tlb/test_unified_tlb.cc.o.d"
  "/root/repo/tests/workload/test_code_stream.cc" "tests/CMakeFiles/seesaw_tests.dir/workload/test_code_stream.cc.o" "gcc" "tests/CMakeFiles/seesaw_tests.dir/workload/test_code_stream.cc.o.d"
  "/root/repo/tests/workload/test_trace.cc" "tests/CMakeFiles/seesaw_tests.dir/workload/test_trace.cc.o" "gcc" "tests/CMakeFiles/seesaw_tests.dir/workload/test_trace.cc.o.d"
  "/root/repo/tests/workload/test_workloads.cc" "tests/CMakeFiles/seesaw_tests.dir/workload/test_workloads.cc.o" "gcc" "tests/CMakeFiles/seesaw_tests.dir/workload/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/seesaw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seesaw_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seesaw_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seesaw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seesaw_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seesaw_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seesaw_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seesaw_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seesaw_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seesaw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
