# Empty compiler generated dependencies file for seesaw_tests.
# This may be replaced when dependencies are built.
