file(REMOVE_RECURSE
  "../examples/seesaw_cli"
  "../examples/seesaw_cli.pdb"
  "CMakeFiles/seesaw_cli.dir/seesaw_cli.cpp.o"
  "CMakeFiles/seesaw_cli.dir/seesaw_cli.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seesaw_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
