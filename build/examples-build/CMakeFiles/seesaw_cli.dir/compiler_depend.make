# Empty compiler generated dependencies file for seesaw_cli.
# This may be replaced when dependencies are built.
