file(REMOVE_RECURSE
  "../examples/cloud_server"
  "../examples/cloud_server.pdb"
  "CMakeFiles/cloud_server.dir/cloud_server.cpp.o"
  "CMakeFiles/cloud_server.dir/cloud_server.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
